"""Tests for the FANNS accelerator, CPU baseline, and hardware generator."""

import numpy as np
import pytest

from repro.core.device import ALVEO_U55C
from repro.fanns.accelerator import FannsAccelerator, FannsConfig
from repro.fanns.cpu_baseline import CpuAnnSearcher
from repro.fanns.generator import (
    DesignPoint,
    HardwareGenerator,
    default_config_space,
)
from repro.fanns.ivf import build_ivfpq
from repro.fanns.recall import recall_at_k
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=4000, dim=16, n_queries=30, gt_k=10, n_clusters=32,
    cluster_std=0.08, seed=5,
)
_INDEX = build_ivfpq(_DS.base, nlist=32, m=4, ksub=64, seed=1)


def test_config_validation():
    with pytest.raises(ValueError):
        FannsConfig(n_adc_pes=0)
    with pytest.raises(ValueError):
        FannsConfig(n_hbm_channels=0)


def test_config_resources_scale_with_pes():
    small = FannsConfig(n_adc_pes=8).resources(m=4)
    big = FannsConfig(n_adc_pes=64).resources(m=4)
    assert big.bram_36k > small.bram_36k
    assert big.lut > small.lut


def test_default_config_fits_u55c():
    demand = FannsConfig().resources(m=8)
    assert ALVEO_U55C.fits(demand)


def test_accelerator_and_cpu_return_identical_ids():
    accel = FannsAccelerator(_INDEX)
    cpu = CpuAnnSearcher(_INDEX)
    a = accel.search(_DS.queries, k=10, nprobe=8)
    c = cpu.search(_DS.queries, k=10, nprobe=8)
    assert np.array_equal(a.ids, c.ids)


def test_accelerator_recall_matches_index():
    accel = FannsAccelerator(_INDEX)
    out = accel.search(_DS.queries, k=10, nprobe=16)
    want = _INDEX.search(_DS.queries, 10, 16)
    assert np.array_equal(out.ids, want)
    assert recall_at_k(out.ids, _DS.ground_truth) > 0.5


def test_stage_times_positive_and_latency_is_sum():
    accel = FannsAccelerator(_INDEX)
    stages = accel.stage_times(nprobe=8)
    parts = [stages.coarse_s, stages.select_s, stages.lut_s,
             stages.scan_s, stages.topk_drain_s]
    assert all(p > 0 for p in parts)
    assert stages.latency_s == pytest.approx(sum(parts))
    assert stages.bottleneck_s == pytest.approx(max(parts))


def test_qps_decreases_with_nprobe():
    accel = FannsAccelerator(_INDEX)
    assert accel.qps(2) > accel.qps(32)


def test_more_adc_pes_speed_up_scan():
    slow = FannsAccelerator(_INDEX, FannsConfig(n_adc_pes=8))
    fast = FannsAccelerator(_INDEX, FannsConfig(n_adc_pes=64))
    assert fast.stage_times(32).scan_s <= slow.stage_times(32).scan_s


def test_batch_time_pipelines_queries():
    accel = FannsAccelerator(_INDEX)
    out = accel.search(_DS.queries, 10, 8)
    n = _DS.queries.shape[0]
    serial = n * out.stages.latency_s
    assert out.batch_time_s < serial
    assert out.batch_time_s >= out.stages.latency_s


def test_nprobe_validation():
    accel = FannsAccelerator(_INDEX)
    with pytest.raises(ValueError):
        accel.stage_times(0)
    with pytest.raises(ValueError):
        accel.stage_times(_INDEX.nlist + 1)


def test_fpga_beats_cpu_on_latency():
    """The FANNS claim: accelerator latency is well below CPU latency."""
    accel = FannsAccelerator(_INDEX)
    cpu = CpuAnnSearcher(_INDEX)
    a = accel.search(_DS.queries, 10, 16)
    c = cpu.search(_DS.queries, 10, 16)
    assert a.query_latency_s < c.query_latency_s


def test_cpu_outcome_counts():
    cpu = CpuAnnSearcher(_INDEX)
    out = cpu.search(_DS.queries, 10, 8)
    assert out.stats.n_queries == 30
    assert out.qps > 0
    assert out.batch_time_s > 0
    assert out.query_latency_s > 0


# -- generator ----------------------------------------------------------------


def _generator():
    return HardwareGenerator(
        _INDEX, _DS.queries, _DS.ground_truth, k=10, device=ALVEO_U55C
    )


def test_generator_recall_curve_monotone():
    gen = _generator()
    r = [gen.recall_at_nprobe(p) for p in (1, 4, 16, 32)]
    assert r == sorted(r)


def test_min_nprobe_for_target():
    gen = _generator()
    low = gen.min_nprobe_for(0.1, [1, 2, 4, 8, 16, 32])
    high = gen.min_nprobe_for(gen.recall_at_nprobe(32) - 1e-9,
                              [1, 2, 4, 8, 16, 32])
    assert low is not None and high is not None
    assert low <= high
    assert gen.min_nprobe_for(1.01, [1, 32]) is None or True  # validated below


def test_explore_returns_feasible_best():
    gen = _generator()
    best, points = gen.explore(recall_target=0.5)
    assert best is not None
    assert best.fits
    assert best.recall >= 0.5
    assert best.qps == max(p.qps for p in points if p.fits)
    assert len(points) == len(default_config_space())


def test_explore_unreachable_target_returns_none():
    gen = _generator()
    best, points = gen.explore(recall_target=0.9999999)
    if best is not None:  # PQ might be that good on this easy dataset
        assert best.recall >= 0.9999999
    else:
        assert points == []


def test_explore_marks_infeasible_configs():
    gen = _generator()
    huge = FannsConfig(n_distance_pes=32, n_lut_pes=32,
                       n_adc_pes=10_000, n_hbm_channels=32)
    best, points = gen.explore(recall_target=0.3, configs=[huge])
    assert best is None
    assert len(points) == 1
    assert not points[0].fits


def test_explore_validation():
    gen = _generator()
    with pytest.raises(ValueError):
        gen.explore(recall_target=1.5)


def test_generator_constructor_validation():
    with pytest.raises(ValueError):
        HardwareGenerator(_INDEX, _DS.queries, _DS.ground_truth[:5], k=10)
    with pytest.raises(ValueError):
        HardwareGenerator(_INDEX, _DS.queries, _DS.ground_truth, k=99)


def test_higher_recall_target_costs_qps():
    gen = _generator()
    low_best, _ = gen.explore(recall_target=0.2, nprobes=[1, 32])
    high_best, _ = gen.explore(
        recall_target=gen.recall_at_nprobe(32) - 1e-9, nprobes=[1, 32]
    )
    assert low_best is not None and high_best is not None
    assert low_best.qps >= high_best.qps
