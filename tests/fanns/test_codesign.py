"""Tests for joint index/hardware co-design."""

import pytest

from repro.fanns.generator import co_design
from repro.fanns.ivf import build_ivfpq
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=3000, dim=16, n_queries=25, gt_k=10, n_clusters=24,
    cluster_std=0.2, seed=19,
)

# Candidate indexes: a coarse-PQ one (fast, low ceiling) and a fine-PQ
# one (slower per candidate... same byte count here differs via m).
_CANDIDATES = {
    "m2": build_ivfpq(_DS.base, nlist=32, m=2, ksub=64, seed=19),
    "m8": build_ivfpq(_DS.base, nlist=32, m=8, ksub=64, seed=19),
}


def test_co_design_picks_a_candidate_meeting_target():
    name, point, per_index = co_design(
        _CANDIDATES, _DS.queries, _DS.ground_truth, recall_target=0.4,
        list_scale=500,
    )
    assert name in _CANDIDATES
    assert point is not None
    assert point.recall >= 0.4
    assert set(per_index) == set(_CANDIDATES)
    reachable = [p for p in per_index.values() if p is not None]
    assert point.qps == max(p.qps for p in reachable)


def test_high_target_excludes_coarse_pq():
    """m=2 PQ cannot reach high recall; co-design must fall back to m=8."""
    name, point, per_index = co_design(
        _CANDIDATES, _DS.queries, _DS.ground_truth, recall_target=0.8,
        list_scale=500,
    )
    assert per_index["m2"] is None or per_index["m2"].recall >= 0.8
    if per_index["m2"] is None:
        assert name == "m8"
    assert point is None or point.recall >= 0.8


def test_low_target_prefers_cheaper_codes_when_feasible():
    """When both candidates reach the target, the higher-QPS one wins;
    m=2 codes halve the scan bytes, so it should win at low recall."""
    name, point, per_index = co_design(
        _CANDIDATES, _DS.queries, _DS.ground_truth, recall_target=0.2,
        list_scale=2000,
    )
    assert point is not None
    if per_index["m2"] is not None and per_index["m8"] is not None:
        assert point.qps >= per_index["m8"].qps


def test_empty_candidates_rejected():
    with pytest.raises(ValueError):
        co_design({}, _DS.queries, _DS.ground_truth, recall_target=0.5)


def test_invalid_target_rejected():
    with pytest.raises(ValueError):
        co_design(_CANDIDATES, _DS.queries, _DS.ground_truth,
                  recall_target=1.01)
