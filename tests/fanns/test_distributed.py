"""Tests for sharded FANNS over an FPGA cluster."""

import numpy as np
import pytest

from repro.fanns.distributed import DistributedFanns
from repro.fanns.ivf import build_ivfpq
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=3000, dim=16, n_queries=20, gt_k=10, n_clusters=24,
    cluster_std=0.2, seed=11,
)
_INDEX = build_ivfpq(_DS.base, nlist=32, m=4, ksub=64, seed=11)


def test_sharded_result_equals_single_node():
    dist = DistributedFanns(_INDEX, n_nodes=4)
    out = dist.search(_DS.queries, k=10, nprobe=16)
    single = _INDEX.search(_DS.queries, 10, 16)
    assert np.array_equal(out.ids, single)


def test_explicit_shard_and_merge_matches_search():
    """The distributed algorithm itself (per-shard top-k + root merge)
    returns exactly what the shortcut functional path returns."""
    dist = DistributedFanns(_INDEX, n_nodes=4)
    for nprobe in (1, 4, 16, 32):
        shortcut = dist.search(_DS.queries, k=10, nprobe=nprobe).ids
        explicit = dist.shard_and_merge(_DS.queries, k=10, nprobe=nprobe)
        assert np.array_equal(shortcut, explicit), f"nprobe={nprobe}"


def test_shards_cover_all_lists():
    dist = DistributedFanns(_INDEX, n_nodes=5)
    counts = dist.shard_list_counts()
    assert sum(counts) == _INDEX.nlist
    assert max(counts) - min(counts) <= 1  # round-robin balance


def test_throughput_scales_with_nodes():
    single = DistributedFanns(_INDEX, n_nodes=1, list_scale=1000)
    quad = DistributedFanns(_INDEX, n_nodes=4, list_scale=1000)
    out1 = single.search(_DS.queries, 10, 32)
    out4 = quad.search(_DS.queries, 10, 32)
    assert out4.qps > 1.5 * out1.qps


def test_latency_includes_gather_and_merge():
    dist = DistributedFanns(_INDEX, n_nodes=8, list_scale=1000)
    out = dist.search(_DS.queries, 10, 32)
    assert out.gather_s > 0
    assert out.merge_s > 0
    assert out.query_latency_s == pytest.approx(
        out.node_latency_s + out.gather_s + out.merge_s
    )


def test_single_node_has_no_gather_cost():
    dist = DistributedFanns(_INDEX, n_nodes=1)
    out = dist.search(_DS.queries, 10, 8)
    assert out.gather_s == 0.0


def test_validation():
    with pytest.raises(ValueError):
        DistributedFanns(_INDEX, n_nodes=0)


# -- tie-breaking under exact distance ties ---------------------------------
#
# Duplicated base vectors share PQ codes, so their ADC distances tie
# *exactly*.  Before the (distance, id) total order, the single-node
# merge kept whichever tied candidate argpartition happened to leave in
# place while each shard's local cut could keep a different one — the
# two paths returned different ids for the same query.

def _duplicate_setup():
    rng = np.random.default_rng(3)
    unique = rng.normal(size=(60, 16)).astype(np.float32)
    base = np.repeat(unique, 40, axis=0)   # 40-way exact duplicates
    queries = unique[:10] + rng.normal(
        scale=0.01, size=(10, 16)
    ).astype(np.float32)
    index = build_ivfpq(base, nlist=16, m=4, ksub=16, seed=3)
    return index, queries


def test_shard_and_merge_matches_search_under_exact_ties():
    index, queries = _duplicate_setup()
    single = index.search(queries, 10, 8)
    for n_nodes in (1, 2, 3, 5):
        dist = DistributedFanns(index, n_nodes=n_nodes)
        merged = dist.shard_and_merge(queries, k=10, nprobe=8)
        assert np.array_equal(merged, single), f"n_nodes={n_nodes}"


def test_tied_candidates_resolve_to_smallest_ids():
    """Among exact ties the lowest vector id wins, at every k cut."""
    index, queries = _duplicate_setup()
    wide = index.search(queries, 40, 8)
    narrow = index.search(queries, 10, 8)
    assert np.array_equal(wide[:, :10], narrow), \
        "the top-k cut must be a prefix of a wider search"
    # np.repeat lays out unique vector j's duplicates at contiguous ids
    # 40j..40j+39; ties resolve id-ascending, so whatever portion of
    # the nearest group is reported must be its smallest ids, in order.
    for qi in range(queries.shape[0]):
        j = int(wide[qi][0]) // 40
        group = [int(i) for i in wide[qi] if int(i) // 40 == j]
        assert group == list(range(40 * j, 40 * j + len(group)))
