"""Unit tests for product quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fanns.pq import train_pq


def _vectors(n=600, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, dim), dtype=np.float32)


def test_shapes_and_properties():
    pq = train_pq(_vectors(), m=4, ksub=32)
    assert pq.m == 4
    assert pq.ksub == 32
    assert pq.dsub == 4
    assert pq.dim == 16
    assert pq.code_nbytes == 4


def test_encode_produces_valid_codes():
    pq = train_pq(_vectors(), m=4, ksub=16)
    codes = pq.encode(_vectors(seed=1))
    assert codes.shape == (600, 4)
    assert codes.dtype == np.uint8
    assert codes.max() < 16


def test_roundtrip_error_bounded():
    vectors = _vectors()
    pq = train_pq(vectors, m=8, ksub=64)
    recon = pq.decode(pq.encode(vectors))
    err = ((vectors - recon) ** 2).sum(axis=1).mean()
    baseline = ((vectors - vectors.mean(axis=0)) ** 2).sum(axis=1).mean()
    # Quantization should explain most of the variance.
    assert err < baseline / 2


def test_more_subspaces_reduce_error():
    vectors = _vectors(seed=2)
    coarse = train_pq(vectors, m=2, ksub=32, seed=1)
    fine = train_pq(vectors, m=8, ksub=32, seed=1)
    err_coarse = ((vectors - coarse.decode(coarse.encode(vectors))) ** 2).sum()
    err_fine = ((vectors - fine.decode(fine.encode(vectors))) ** 2).sum()
    assert err_fine < err_coarse


def test_adc_matches_decoded_distance():
    """ADC distance == exact distance to the *reconstructed* vector."""
    vectors = _vectors(seed=3)
    pq = train_pq(vectors, m=4, ksub=32)
    codes = pq.encode(vectors[:50])
    recon = pq.decode(codes)
    query = vectors[100]
    table = pq.adc_table(query)
    adc = pq.adc_distances(table, codes)
    exact = ((recon - query) ** 2).sum(axis=1)
    assert np.allclose(adc, exact, rtol=1e-4, atol=1e-4)


def test_adc_empty_codes():
    pq = train_pq(_vectors(), m=4, ksub=16)
    table = pq.adc_table(_vectors()[0])
    assert pq.adc_distances(table, np.empty((0, 4), dtype=np.uint8)).shape == (0,)


def test_dimension_validation():
    pq = train_pq(_vectors(), m=4, ksub=16)
    with pytest.raises(ValueError):
        pq.encode(np.zeros((3, 10), dtype=np.float32))
    with pytest.raises(ValueError):
        pq.adc_table(np.zeros(10, dtype=np.float32))
    with pytest.raises(ValueError):
        pq.decode(np.zeros((3, 7), dtype=np.uint8))


def test_training_validation():
    with pytest.raises(ValueError):
        train_pq(_vectors(), m=3)  # 16 % 3 != 0
    with pytest.raises(ValueError):
        train_pq(_vectors(), m=4, ksub=300)
    with pytest.raises(ValueError):
        train_pq(_vectors(n=10), m=4, ksub=64)  # too few samples
    with pytest.raises(ValueError):
        train_pq(np.zeros(16, dtype=np.float32), m=4)


@settings(max_examples=10, deadline=None)
@given(
    m=st.sampled_from([1, 2, 4, 8]),
    ksub=st.sampled_from([4, 16, 64]),
)
def test_property_adc_is_nonnegative_and_finite(m, ksub):
    vectors = _vectors(n=200, dim=8, seed=9)
    pq = train_pq(vectors, m=m, ksub=ksub, max_iterations=5)
    codes = pq.encode(vectors)
    table = pq.adc_table(vectors[0])
    d = pq.adc_distances(table, codes)
    assert (d >= 0).all()
    assert np.isfinite(d).all()
