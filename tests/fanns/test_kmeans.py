"""Unit tests for k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fanns.kmeans import kmeans, kmeans_pp_init


def _blobs(n_per=50, k=4, dim=2, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.random((k, dim)).astype(np.float32) * 10
    points = np.concatenate(
        [c + rng.normal(0, spread, (n_per, dim)).astype(np.float32)
         for c in centers]
    )
    return points, centers


def test_recovers_well_separated_clusters():
    points, centers = _blobs()
    result = kmeans(points, 4, seed=1)
    # Each true center should have a learned centroid nearby.
    for c in centers:
        d = ((result.centroids - c) ** 2).sum(axis=1).min()
        assert d < 0.1


def test_assignments_match_nearest_centroid():
    points, _ = _blobs(seed=2)
    result = kmeans(points, 4, seed=2)
    d = ((points[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
    assert np.array_equal(result.assignments, d.argmin(axis=1))


def test_inertia_decreases_with_more_clusters():
    points, _ = _blobs(seed=3)
    few = kmeans(points, 2, seed=3)
    many = kmeans(points, 8, seed=3)
    assert many.inertia < few.inertia


def test_deterministic_given_seed():
    points, _ = _blobs(seed=4)
    a = kmeans(points, 4, seed=9)
    b = kmeans(points, 4, seed=9)
    assert np.array_equal(a.centroids, b.centroids)


def test_k_equals_n_gives_zero_inertia():
    rng = np.random.default_rng(5)
    points = rng.random((10, 3)).astype(np.float32)
    result = kmeans(points, 10, seed=5)
    assert result.inertia == pytest.approx(0.0, abs=1e-6)


def test_handles_duplicate_points():
    points = np.ones((20, 4), dtype=np.float32)
    result = kmeans(points, 3, seed=6)
    assert result.centroids.shape == (3, 4)
    assert np.isfinite(result.inertia)


def test_invalid_k_rejected():
    points = np.zeros((5, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        kmeans(points, 0)
    with pytest.raises(ValueError):
        kmeans(points, 6)
    with pytest.raises(ValueError):
        kmeans(np.zeros(5, dtype=np.float32), 2)


def test_kmeans_pp_init_spreads_centroids():
    points, centers = _blobs(seed=7)
    rng = np.random.default_rng(7)
    init = kmeans_pp_init(points, 4, rng)
    # Initial centroids should not all come from one blob.
    pairwise = ((init[:, None] - init[None]) ** 2).sum(axis=2)
    np.fill_diagonal(pairwise, np.inf)
    assert pairwise.min() > 1.0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    k=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=1, max_value=6),
)
def test_property_result_shapes_and_bounds(n, k, dim):
    rng = np.random.default_rng(42)
    points = rng.random((n, dim)).astype(np.float32)
    k = min(k, n)
    result = kmeans(points, k, seed=0)
    assert result.centroids.shape == (k, dim)
    assert result.assignments.shape == (n,)
    assert result.assignments.min() >= 0
    assert result.assignments.max() < k
    assert result.inertia >= 0
