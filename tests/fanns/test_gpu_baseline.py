"""Tests for the GPU IVF-PQ baseline."""

import numpy as np
import pytest

from repro.fanns.accelerator import FannsAccelerator
from repro.fanns.cpu_baseline import CpuAnnSearcher
from repro.fanns.gpu_baseline import GpuAnnSearcher
from repro.fanns.ivf import build_ivfpq
from repro.microrec.fleetrec import A100, V100
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=3000, dim=16, n_queries=30, gt_k=10, n_clusters=24,
    cluster_std=0.2, seed=29,
)
_INDEX = build_ivfpq(_DS.base, nlist=32, m=4, ksub=64, seed=29)
_SCALE = 2_000


def test_gpu_ids_identical_to_cpu_and_fpga():
    gpu = GpuAnnSearcher(_INDEX, list_scale=_SCALE)
    cpu = CpuAnnSearcher(_INDEX, list_scale=_SCALE)
    fpga = FannsAccelerator(_INDEX, list_scale=_SCALE)
    g = gpu.search(_DS.queries, 10, 8)
    assert np.array_equal(g.ids, cpu.search(_DS.queries, 10, 8).ids)
    assert np.array_equal(g.ids, fpga.search(_DS.queries, 10, 8).ids)


def test_gpu_throughput_beats_cpu_at_scale():
    """The GPU's HBM feeds the scan far faster than host DRAM."""
    gpu = GpuAnnSearcher(_INDEX, list_scale=_SCALE)
    cpu = CpuAnnSearcher(_INDEX, list_scale=_SCALE)
    g = gpu.search(_DS.queries, 10, 16)
    c = cpu.search(_DS.queries, 10, 16)
    assert g.qps > c.qps


def test_fpga_wins_single_query_latency():
    """The FANNS SLA argument: launches + batching hurt the GPU where
    the FPGA pipeline shines."""
    gpu = GpuAnnSearcher(_INDEX, list_scale=_SCALE)
    fpga = FannsAccelerator(_INDEX, list_scale=_SCALE)
    g = gpu.search(_DS.queries[:1], 10, 4)
    f = fpga.search(_DS.queries[:1], 10, 4)
    assert f.query_latency_s < g.query_latency_s
    # The launch overhead floors GPU latency.
    assert g.query_latency_s >= 4 * gpu.gpu.kernel_launch_s


def test_bigger_gpu_is_faster():
    small = GpuAnnSearcher(_INDEX, gpu=V100, list_scale=_SCALE)
    big = GpuAnnSearcher(_INDEX, gpu=A100, list_scale=_SCALE)
    assert (
        big.search(_DS.queries, 10, 16).batch_time_s
        <= small.search(_DS.queries, 10, 16).batch_time_s
    )


def test_outcome_consistency_and_validation():
    gpu = GpuAnnSearcher(_INDEX)
    out = gpu.search(_DS.queries, 10, 4)
    assert out.batch_time_s > 0
    assert out.qps == pytest.approx(30 / out.batch_time_s)
    with pytest.raises(ValueError):
        GpuAnnSearcher(_INDEX, list_scale=0)
    with pytest.raises(ValueError):
        GpuAnnSearcher(_INDEX, scan_ops_per_code=0)
