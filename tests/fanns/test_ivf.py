"""Unit tests for the IVF-PQ index and recall metrics."""

import numpy as np
import pytest

from repro.fanns.ivf import SearchStats, build_ivfpq
from repro.fanns.recall import recall_at_k
from repro.workloads.vectors import clustered_dataset

_DS = clustered_dataset(
    n=3000, dim=16, n_queries=40, gt_k=10, n_clusters=24,
    cluster_std=0.08, seed=3,
)


def _index(**kwargs):
    params = dict(nlist=32, m=4, ksub=64, seed=0)
    params.update(kwargs)
    return build_ivfpq(_DS.base, **params)


def test_index_partitions_all_vectors():
    index = _index()
    assert index.n_vectors == _DS.n
    all_ids = np.concatenate(index.list_ids)
    assert len(np.unique(all_ids)) == _DS.n
    assert index.nlist == 32
    assert index.code_bytes_total == _DS.n * 4


def test_search_shapes_and_id_validity():
    index = _index()
    ids = index.search(_DS.queries, k=10, nprobe=8)
    assert ids.shape == (40, 10)
    valid = ids[ids >= 0]
    assert valid.max() < _DS.n


def test_recall_increases_with_nprobe():
    index = _index()
    recalls = []
    for nprobe in (1, 4, 16, 32):
        ids = index.search(_DS.queries, k=10, nprobe=nprobe)
        recalls.append(recall_at_k(ids, _DS.ground_truth))
    assert recalls == sorted(recalls)
    assert recalls[-1] > recalls[0]
    assert recalls[-1] > 0.6  # probing everything: limited only by PQ error


def test_full_probe_high_recall_at_1():
    """With nprobe=nlist, recall@1 is limited only by quantization."""
    index = _index(m=8, ksub=128)
    ids = index.search(_DS.queries, k=1, nprobe=32)
    assert recall_at_k(ids, _DS.ground_truth, k=1) > 0.75


def test_residual_beats_plain_encoding():
    res = _index(residual=True)
    plain = _index(residual=False)
    r_res = recall_at_k(res.search(_DS.queries, 10, 8), _DS.ground_truth)
    r_plain = recall_at_k(plain.search(_DS.queries, 10, 8), _DS.ground_truth)
    assert r_res >= r_plain - 0.02  # residual never meaningfully worse


def test_stats_count_work():
    index = _index()
    stats = SearchStats()
    index.search(_DS.queries[:5], k=10, nprobe=4, stats=stats)
    assert stats.n_queries == 5
    assert stats.centroid_distances == 5 * 32
    assert stats.codes_scanned > 0
    assert stats.code_bytes_scanned == stats.codes_scanned * 4
    # Residual mode: one LUT per probed list.
    assert stats.lut_entries == 5 * 4 * 64 * 4  # q * nprobe * ksub * m? see below


def test_stats_scale_with_nprobe():
    index = _index()
    small, large = SearchStats(), SearchStats()
    index.search(_DS.queries[:5], 10, nprobe=2, stats=small)
    index.search(_DS.queries[:5], 10, nprobe=16, stats=large)
    assert large.codes_scanned > small.codes_scanned
    assert large.lut_entries > small.lut_entries


def test_expected_candidates_monotone():
    index = _index()
    assert index.expected_candidates(1) <= index.expected_candidates(8)
    assert index.expected_candidates(0) == 0.0


def test_search_validation():
    index = _index()
    with pytest.raises(ValueError):
        index.search(_DS.queries, k=0, nprobe=1)
    with pytest.raises(ValueError):
        index.search(_DS.queries, k=1, nprobe=0)
    with pytest.raises(ValueError):
        index.search(_DS.queries, k=1, nprobe=33)
    with pytest.raises(ValueError):
        index.search(_DS.queries[:, :8], k=1, nprobe=1)


def test_build_validation():
    with pytest.raises(ValueError):
        build_ivfpq(_DS.base, nlist=0, m=4)
    with pytest.raises(ValueError):
        build_ivfpq(_DS.base, nlist=10_000_000, m=4)
    with pytest.raises(ValueError):
        build_ivfpq(np.zeros(8, dtype=np.float32), nlist=1, m=4)


def test_train_sample_reduces_training_but_still_works():
    index = _index(train_sample=500)
    ids = index.search(_DS.queries, 10, nprobe=16)
    assert recall_at_k(ids, _DS.ground_truth) > 0.3


def test_recall_metric_validation():
    with pytest.raises(ValueError):
        recall_at_k(np.zeros((3, 5), dtype=np.int64),
                    np.zeros((4, 5), dtype=np.int64))
    with pytest.raises(ValueError):
        recall_at_k(np.zeros((3, 5), dtype=np.int64),
                    np.zeros((3, 5), dtype=np.int64), k=6)


def test_recall_metric_values():
    gt = np.array([[0, 1, 2]])
    assert recall_at_k(np.array([[0, 1, 2]]), gt) == 1.0
    assert recall_at_k(np.array([[2, 1, 0]]), gt) == 1.0  # set semantics
    assert recall_at_k(np.array([[0, 9, 8]]), gt) == pytest.approx(1 / 3)
    assert recall_at_k(np.array([[-1, -1, -1]]), gt) == 0.0
