"""Tests for relational operators as FPGA stream kernels.

The key invariant: the offload pipeline running in the dataflow
simulator computes exactly what the CPU engine computes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import BurstKernel, Sink, Source
from repro.core.sim import Simulator
from repro.core.stream import Stream
from repro.relational.engine import execute
from repro.relational.expressions import col
from repro.relational.fpga_ops import (
    make_operator_kernel,
    make_table_bursts,
    plan_kernels,
    rows_per_cycle,
)
from repro.relational.operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
    QueryPlan,
    Transform,
)
from repro.relational.table import Table
from repro.workloads.tables import grouped_table, uniform_table


def _run_plan_on_fabric(plan, table, burst_rows=64):
    """Run a plan through BurstKernels; return (result_table, done_ps)."""
    sim = Simulator()
    kernels = plan_kernels(plan, table.schema.row_nbytes)
    streams = [Stream(sim, depth=4, name=f"s{i}")
               for i in range(len(kernels) + 1)]
    Source(sim, streams[0], make_table_bursts(table, burst_rows))
    for ok, inp, out in zip(kernels, streams[:-1], streams[1:]):
        BurstKernel(sim, ok.spec, ok.fn, inp, out)
    sink = Sink(sim, streams[-1])
    sim.run()
    tables = sink.payloads
    if not tables:
        return None, sink.done_at_ps
    merged = Table(
        {
            name: np.concatenate([t.column(name) for t in tables])
            for name in tables[0].column_names
        }
    )
    return merged, sink.done_at_ps


def test_rows_per_cycle():
    assert rows_per_cycle(16) == 4
    assert rows_per_cycle(64) == 1
    assert rows_per_cycle(200) == 1
    with pytest.raises(ValueError):
        rows_per_cycle(0)


def test_filter_kernel_matches_cpu_engine():
    table = Table(uniform_table(1000, seed=1))
    plan = QueryPlan((Filter(col("key") < 300_000),))
    fpga, _ = _run_plan_on_fabric(plan, table)
    cpu = execute(plan, table)
    assert fpga.equals(cpu)


def test_filter_project_pipeline_matches():
    table = Table(uniform_table(2000, seed=2))
    plan = QueryPlan((
        Filter((col("key") < 700_000) & (col("val0") > 0.25)),
        Project(("key", "val1")),
    ))
    fpga, _ = _run_plan_on_fabric(plan, table)
    assert fpga.equals(execute(plan, table))


def test_aggregate_kernel_emits_once_with_correct_totals():
    table = Table(uniform_table(512, seed=3))
    plan = QueryPlan((
        Aggregate((
            AggSpec(AggFunc.SUM, "val0"),
            AggSpec(AggFunc.COUNT, "val0", alias="n"),
        )),
    ))
    fpga, _ = _run_plan_on_fabric(plan, table, burst_rows=50)
    cpu = execute(plan, table)
    assert fpga.n_rows == 1
    assert fpga["sum_val0"][0] == pytest.approx(cpu["sum_val0"][0])
    assert fpga["n"][0] == cpu["n"][0]


def test_groupby_kernel_matches_cpu_engine():
    table = Table(grouped_table(3000, n_groups=16, seed=4))
    plan = QueryPlan((
        Filter(col("value") > 0.2),
        GroupByAggregate("group", (
            AggSpec(AggFunc.SUM, "value"),
            AggSpec(AggFunc.MEAN, "value"),
        )),
    ))
    fpga, _ = _run_plan_on_fabric(plan, table, burst_rows=128)
    cpu = execute(plan, table)
    assert fpga.column_names == cpu.column_names
    assert np.array_equal(fpga["group"], cpu["group"])
    assert np.allclose(fpga["sum_value"], cpu["sum_value"])


def test_transform_kernel_passes_data_through():
    table = Table(uniform_table(100, seed=5))
    plan = QueryPlan((Transform("decrypt", ops_per_byte=4.0),))
    fpga, _ = _run_plan_on_fabric(plan, table)
    assert fpga.equals(table)


def test_wider_rows_lower_unroll():
    narrow = make_operator_kernel(Project(("a",)), row_nbytes=8)
    wide = make_operator_kernel(Project(("a",)), row_nbytes=64)
    assert narrow.spec.unroll == 8
    assert wide.spec.unroll == 1
    assert (
        narrow.spec.throughput_items_per_sec()
        > wide.spec.throughput_items_per_sec()
    )


def test_filter_depth_grows_with_predicate_complexity():
    simple = make_operator_kernel(Filter(col("a") < 1), row_nbytes=16)
    complex_ = make_operator_kernel(
        Filter((col("a") < 1) & (col("b") > 2) | (col("c") == 3)),
        row_nbytes=16,
    )
    assert complex_.spec.depth > simple.spec.depth


def test_make_table_bursts_covers_all_rows_once():
    table = Table(uniform_table(250, seed=6))
    bursts = make_table_bursts(table, 64)
    assert sum(b.count for b in bursts) == 250
    assert [b.meta["last"] for b in bursts] == [False, False, False, True]
    with pytest.raises(ValueError):
        make_table_bursts(table, 0)


def test_empty_table_still_yields_last_burst():
    table = Table(uniform_table(0, seed=7))
    bursts = make_table_bursts(table, 64)
    assert len(bursts) == 1
    assert bursts[0].meta["last"]
    assert bursts[0].count == 0


def test_estimated_gain_defaults():
    filt = make_operator_kernel(
        Filter(col("a") < 1), row_nbytes=8, estimated_selectivity=0.2
    )
    agg = make_operator_kernel(
        Aggregate((AggSpec(AggFunc.SUM, "a"),)), row_nbytes=8
    )
    assert filt.estimated_gain == 0.2
    assert agg.estimated_gain == 0.0


@settings(max_examples=20, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=400),
    burst_rows=st.integers(min_value=1, max_value=100),
    threshold=st.integers(min_value=0, max_value=1_000_000),
)
def test_property_fpga_pipeline_equals_cpu_engine(n_rows, burst_rows, threshold):
    table = Table(uniform_table(n_rows, seed=8))
    plan = QueryPlan((
        Filter(col("key") < threshold),
        Project(("key",)),
    ))
    fpga, _ = _run_plan_on_fabric(plan, table, burst_rows=burst_rows)
    cpu = execute(plan, table)
    if cpu.n_rows == 0:
        assert fpga is None or fpga.n_rows == 0
    else:
        assert fpga.equals(cpu)
