"""Unit tests for predicate expressions."""

import numpy as np
import pytest

from repro.relational.expressions import BinOp, and_, col, lit, not_, or_
from repro.relational.table import Table


def _table():
    return Table(
        {
            "a": np.array([1, 2, 3, 4], dtype=np.int64),
            "b": np.array([4.0, 3.0, 2.0, 1.0]),
        }
    )


def test_comparisons():
    t = _table()
    assert np.array_equal((col("a") < 3).evaluate(t), [True, True, False, False])
    assert np.array_equal((col("a") >= 2).evaluate(t), [False, True, True, True])
    assert np.array_equal((col("a") == 2).evaluate(t), [False, True, False, False])
    assert np.array_equal((col("a") != 2).evaluate(t), [True, False, True, True])


def test_column_vs_column():
    t = _table()
    assert np.array_equal(
        (col("a") > col("b")).evaluate(t), [False, False, True, True]
    )


def test_arithmetic():
    t = _table()
    expr = (col("a") * 2 + col("b")) / 2
    expected = (t["a"] * 2 + t["b"]) / 2
    assert np.allclose(expr.evaluate(t), expected)
    assert np.allclose((col("a") - 1).evaluate(t), t["a"] - 1)


def test_boolean_connectives():
    t = _table()
    both = ((col("a") > 1) & (col("b") > 1.5)).evaluate(t)
    assert np.array_equal(both, [False, True, True, False])
    either = ((col("a") == 1) | (col("b") == 1.0)).evaluate(t)
    assert np.array_equal(either, [True, False, False, True])
    negated = (~(col("a") > 2)).evaluate(t)
    assert np.array_equal(negated, [True, True, False, False])


def test_variadic_helpers():
    t = _table()
    e = and_(col("a") > 0, col("a") < 4, col("b") > 1.0)
    assert np.array_equal(e.evaluate(t), [True, True, True, False])
    e2 = or_(col("a") == 1, col("a") == 4)
    assert np.array_equal(e2.evaluate(t), [True, False, False, True])
    assert np.array_equal(not_(col("a") > 2).evaluate(t), [True, True, False, False])
    with pytest.raises(ValueError):
        and_()
    with pytest.raises(ValueError):
        or_()


def test_op_count_and_columns_used():
    expr = (col("a") > 1) & (col("b") < lit(2.0))
    assert expr.op_count() == 3
    assert expr.columns_used() == {"a", "b"}
    assert lit(5).op_count() == 0
    assert not_(col("a") > 0).op_count() == 2


def test_unsupported_operator_rejected():
    with pytest.raises(ValueError):
        BinOp("%", col("a"), lit(2))


def test_repr_is_readable():
    expr = (col("a") > 1) & ~(col("b") == 0)
    text = repr(expr)
    assert "a" in text and "and" in text and "~" in text
