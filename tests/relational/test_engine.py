"""Unit tests for the CPU relational engine."""

import numpy as np
import pytest

from repro.baselines.cpu import xeon_server
from repro.relational.engine import cpu_cost_s, execute
from repro.relational.expressions import col
from repro.relational.operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
    QueryPlan,
    Transform,
)
from repro.relational.table import Table
from repro.workloads.tables import grouped_table, uniform_table


def _table(n=100):
    return Table(uniform_table(n, n_payload_cols=2, seed=3))


def test_filter_project():
    t = _table()
    plan = QueryPlan((
        Filter(col("key") < 500_000),
        Project(("val0",)),
    ))
    result = execute(plan, t)
    mask = t["key"] < 500_000
    assert result.column_names == ("val0",)
    assert np.array_equal(result["val0"], t["val0"][mask])


def test_scalar_aggregates():
    t = _table()
    plan = QueryPlan((
        Aggregate((
            AggSpec(AggFunc.SUM, "val0"),
            AggSpec(AggFunc.MIN, "val0"),
            AggSpec(AggFunc.MAX, "val0"),
            AggSpec(AggFunc.MEAN, "val0"),
            AggSpec(AggFunc.COUNT, "val0", alias="n"),
        )),
    ))
    result = execute(plan, t)
    assert result.n_rows == 1
    assert result["sum_val0"][0] == pytest.approx(t["val0"].sum())
    assert result["min_val0"][0] == pytest.approx(t["val0"].min())
    assert result["max_val0"][0] == pytest.approx(t["val0"].max())
    assert result["mean_val0"][0] == pytest.approx(t["val0"].mean())
    assert result["n"][0] == 100


def test_aggregate_empty_input_raises():
    t = _table().filter(np.zeros(100, dtype=bool))
    plan = QueryPlan((Aggregate((AggSpec(AggFunc.SUM, "val0"),)),))
    with pytest.raises(ValueError):
        execute(plan, t)


def test_group_by_aggregate_matches_numpy():
    t = Table(grouped_table(10_000, n_groups=32, seed=5))
    plan = QueryPlan((
        GroupByAggregate(
            "group",
            (
                AggSpec(AggFunc.SUM, "value"),
                AggSpec(AggFunc.COUNT, "value", alias="n"),
                AggSpec(AggFunc.MIN, "value"),
                AggSpec(AggFunc.MAX, "value"),
                AggSpec(AggFunc.MEAN, "value"),
            ),
        ),
    ))
    result = execute(plan, t)
    for i, g in enumerate(result["group"]):
        rows = t["value"][t["group"] == g]
        assert result["sum_value"][i] == pytest.approx(rows.sum())
        assert result["n"][i] == len(rows)
        assert result["min_value"][i] == pytest.approx(rows.min())
        assert result["max_value"][i] == pytest.approx(rows.max())
        assert result["mean_value"][i] == pytest.approx(rows.mean())


def test_group_key_must_be_integer():
    t = _table()
    plan = QueryPlan((
        GroupByAggregate("val0", (AggSpec(AggFunc.SUM, "val1"),)),
    ))
    with pytest.raises(TypeError):
        execute(plan, t)


def test_transform_preserves_values():
    t = _table()
    plan = QueryPlan((Transform("decrypt", ops_per_byte=2.0),))
    assert execute(plan, t).equals(t)


def test_filter_then_aggregate():
    t = _table(1000)
    plan = QueryPlan((
        Filter(col("key") < 100_000),
        Aggregate((AggSpec(AggFunc.COUNT, "key", alias="n"),)),
    ))
    result = execute(plan, t)
    assert result["n"][0] == (t["key"] < 100_000).sum()


def test_plan_rejects_operators_after_aggregation():
    with pytest.raises(ValueError):
        QueryPlan((
            Aggregate((AggSpec(AggFunc.SUM, "x"),)),
            Project(("x",)),
        ))


def test_plan_then_builder():
    plan = QueryPlan().then(Filter(col("key") < 1)).then(Project(("key",)))
    assert len(plan.operators) == 2
    assert not plan.has_aggregation


def test_columns_needed_prunes_scan():
    all_cols = ("key", "val0", "val1", "val2")
    plan = QueryPlan((
        Filter(col("key") < 10),
        Project(("val0",)),
    ))
    assert plan.columns_needed(all_cols) == ("key", "val0")
    bare = QueryPlan((Filter(col("key") < 10),))
    assert bare.columns_needed(all_cols) == all_cols


def test_cpu_cost_increases_with_data_and_ops():
    cpu = xeon_server()
    small, large = _table(1000), _table(100_000)
    plan = QueryPlan((Filter(col("key") < 500_000),))
    assert cpu_cost_s(plan, large, cpu) > cpu_cost_s(plan, small, cpu)
    heavy = QueryPlan((
        Transform("decompress", ops_per_byte=8.0),
        Filter(col("key") < 500_000),
    ))
    assert cpu_cost_s(heavy, large, cpu) >= cpu_cost_s(plan, large, cpu)


def test_cpu_cost_at_least_stream_time():
    cpu = xeon_server()
    t = _table(100_000)
    plan = QueryPlan((Filter(col("key") < 500_000),))
    touched_bytes = t["key"].nbytes + sum(
        t[c].nbytes for c in ("val0", "val1")
    )
    assert cpu_cost_s(plan, t, cpu) >= cpu.stream_time_s(touched_bytes) * 0.99
