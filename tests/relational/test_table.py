"""Unit tests for schemas and columnar tables."""

import numpy as np
import pytest

from repro.relational.schema import ColumnType, Schema
from repro.relational.table import Table


def _table(n=10):
    return Table(
        {
            "key": np.arange(n, dtype=np.int64),
            "val": np.linspace(0.0, 1.0, n),
        }
    )


def test_column_type_widths():
    assert ColumnType.INT64.nbytes == 8
    assert ColumnType.FLOAT32.nbytes == 4
    assert ColumnType.BOOL.nbytes == 1
    assert ColumnType.from_dtype(np.dtype("float64")) is ColumnType.FLOAT64
    with pytest.raises(TypeError):
        ColumnType.from_dtype(np.dtype("complex128"))


def test_schema_row_bytes_and_lookup():
    schema = Schema.of(key=ColumnType.INT64, val=ColumnType.FLOAT64)
    assert schema.row_nbytes == 16
    assert schema.type_of("key") is ColumnType.INT64
    assert "val" in schema and "ghost" not in schema
    assert len(schema) == 2
    with pytest.raises(KeyError):
        schema.type_of("ghost")


def test_schema_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema((("a", ColumnType.INT64), ("a", ColumnType.INT64)))


def test_schema_project_preserves_order():
    schema = Schema.of(a=ColumnType.INT64, b=ColumnType.FLOAT64,
                       c=ColumnType.INT32)
    assert schema.project(["c", "a"]).names == ("c", "a")


def test_table_derives_schema():
    t = _table()
    assert t.schema.type_of("key") is ColumnType.INT64
    assert t.schema.type_of("val") is ColumnType.FLOAT64
    assert t.n_rows == 10
    assert t.nbytes == 10 * 16


def test_table_validation():
    with pytest.raises(ValueError):
        Table({})
    with pytest.raises(ValueError):
        Table({"a": np.arange(3), "b": np.arange(4)})


def test_project_and_getitem():
    t = _table()
    p = t.project(["val"])
    assert p.column_names == ("val",)
    assert np.array_equal(t["key"], np.arange(10))
    with pytest.raises(KeyError):
        t.column("ghost")


def test_filter_by_mask():
    t = _table()
    f = t.filter(t["key"] < 3)
    assert f.n_rows == 3
    assert np.array_equal(f["key"], [0, 1, 2])
    with pytest.raises(ValueError):
        t.filter(np.ones(5, dtype=bool))
    with pytest.raises(ValueError):
        t.filter(np.ones(10, dtype=np.int64))


def test_take_gathers_rows():
    t = _table()
    g = t.take(np.array([9, 0, 9]))
    assert np.array_equal(g["key"], [9, 0, 9])


def test_equals():
    assert _table().equals(_table())
    assert not _table().equals(_table(5))
    other = Table({"key": np.arange(10, dtype=np.int64),
                   "other": np.zeros(10)})
    assert not _table().equals(other)
