"""Unit and property tests for hash joins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import xeon_server
from repro.relational.join import (
    FpgaJoinModel,
    cpu_join_time_s,
    hash_join,
)
from repro.relational.table import Table


def _tables():
    probe = Table({
        "k": np.array([1, 2, 3, 2, 9], dtype=np.int64),
        "p": np.array([10.0, 20.0, 30.0, 21.0, 90.0]),
    })
    build = Table({
        "k": np.array([2, 3, 4], dtype=np.int64),
        "b": np.array([200, 300, 400], dtype=np.int64),
    })
    return probe, build


def test_inner_join_basic():
    probe, build = _tables()
    out = hash_join(probe, build, "k", "k")
    # Keys 2 (twice), 3 match; 1 and 9 drop.
    assert out.n_rows == 3
    assert np.array_equal(out["k"], [2, 3, 2])
    assert np.array_equal(out["b"], [200, 300, 200])
    assert np.array_equal(out["p"], [20.0, 30.0, 21.0])


def test_duplicate_build_keys_expand():
    probe = Table({"k": np.array([5], dtype=np.int64)})
    build = Table({
        "k": np.array([5, 5, 6], dtype=np.int64),
        "b": np.array([1, 2, 3], dtype=np.int64),
    })
    out = hash_join(probe, build, "k", "k")
    assert out.n_rows == 2
    assert sorted(out["b"].tolist()) == [1, 2]


def test_column_name_collision_gets_suffix():
    probe = Table({
        "k": np.array([1], dtype=np.int64),
        "x": np.array([10], dtype=np.int64),
    })
    build = Table({
        "k": np.array([1], dtype=np.int64),
        "x": np.array([99], dtype=np.int64),
    })
    out = hash_join(probe, build, "k", "k")
    assert out["x"][0] == 10
    assert out["x_r"][0] == 99


def test_empty_result_join():
    probe = Table({"k": np.array([1, 2], dtype=np.int64)})
    build = Table({"k": np.array([7], dtype=np.int64),
                   "b": np.array([0], dtype=np.int64)})
    out = hash_join(probe, build, "k", "k")
    assert out.n_rows == 0
    assert "b" in out.column_names


def test_non_integer_keys_rejected():
    probe = Table({"k": np.array([1.5, 2.5])})
    build = Table({"k": np.array([1], dtype=np.int64)})
    with pytest.raises(TypeError):
        hash_join(probe, build, "k", "k")


@settings(max_examples=30, deadline=None)
@given(
    probe_keys=st.lists(st.integers(min_value=0, max_value=15),
                        min_size=1, max_size=40),
    build_keys=st.lists(st.integers(min_value=0, max_value=15),
                        min_size=1, max_size=40),
)
def test_property_join_matches_nested_loop(probe_keys, build_keys):
    probe = Table({
        "k": np.array(probe_keys, dtype=np.int64),
        "pi": np.arange(len(probe_keys), dtype=np.int64),
    })
    build = Table({
        "k": np.array(build_keys, dtype=np.int64),
        "bi": np.arange(len(build_keys), dtype=np.int64),
    })
    out = hash_join(probe, build, "k", "k")
    expected = sorted(
        (pk, pi, bi)
        for pi, pk in enumerate(probe_keys)
        for bi, bk in enumerate(build_keys)
        if pk == bk
    )
    got = sorted(zip(out["k"].tolist(), out["pi"].tolist(),
                     out["bi"].tolist()))
    assert got == expected


def test_cpu_join_cost_scales():
    cpu = xeon_server()
    small = cpu_join_time_s(cpu, 1_000_000, 1_000_000, 16, 16)
    big = cpu_join_time_s(cpu, 10_000_000, 10_000_000, 16, 16)
    assert big > 5 * small
    assert cpu_join_time_s(cpu, 0, 0, 16, 16) == 0.0
    with pytest.raises(ValueError):
        cpu_join_time_s(cpu, -1, 0, 16, 16)


def test_fpga_join_placement_decision():
    model = FpgaJoinModel()
    assert model.placement_of(1_000, 16) == "bram"
    assert model.placement_of(100_000_000, 16) == "hbm"


def test_fpga_join_bram_much_faster_than_hbm():
    model = FpgaJoinModel()
    n_probe = 10_000_000
    small = model.join_time(n_probe, 100_000, 16, 16)
    large = model.join_time(n_probe, 50_000_000, 16, 16)
    assert small.placement == "bram"
    assert large.placement == "hbm"
    assert small.total_s < large.total_s
    # BRAM probes run at clock rate across the parallel pipelines.
    expected = n_probe / (300e6 * model.n_probe_pipelines)
    assert small.probe_s == pytest.approx(expected, rel=0.01)


def test_cidr_verdict_standalone_join_is_contested():
    """The cited paper's point: for big in-memory joins, a good CPU is
    competitive with the FPGA (both memory-bound)."""
    cpu = xeon_server()
    model = FpgaJoinModel()
    n = 50_000_000
    fpga = model.join_time(n, n, 16, 16).total_s
    host = cpu_join_time_s(cpu, n, n, 16, 16)
    ratio = host / fpga
    assert 0.2 < ratio < 5, f"neither side dominates, got ratio {ratio}"


def test_streaming_probe_rate_regimes():
    model = FpgaJoinModel(n_hbm_channels=4)
    line_rate = model.streaming_probe_rate(10_000, 16)
    hbm_rate = model.streaming_probe_rate(100_000_000, 16)
    assert line_rate == pytest.approx(300e6, rel=0.01)
    assert hbm_rate < line_rate
    # With all 32 channels the HBM probe rate reaches the datapath cap.
    wide = FpgaJoinModel(n_hbm_channels=32)
    assert wide.streaming_probe_rate(100_000_000, 16) == pytest.approx(
        line_rate, rel=0.01
    )


def test_model_validation():
    with pytest.raises(ValueError):
        FpgaJoinModel(bram_fraction=0)
    with pytest.raises(ValueError):
        FpgaJoinModel(n_hbm_channels=0)
    with pytest.raises(ValueError):
        FpgaJoinModel(hash_table_overhead=0.5)
    with pytest.raises(ValueError):
        FpgaJoinModel().join_time(-1, 0, 16, 16)
