"""Unit tests for the mini SQL front end."""

import numpy as np
import pytest

from repro.relational.engine import execute
from repro.relational.operators import (
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
)
from repro.relational.sql import SqlError, parse_query
from repro.relational.table import Table
from repro.workloads.tables import grouped_table, uniform_table


def _table(n=1000):
    return Table(uniform_table(n, n_payload_cols=2, seed=1))


def test_select_star_is_empty_plan():
    plan = parse_query("SELECT *")
    assert plan.operators == ()
    t = _table(10)
    assert execute(plan, t).equals(t)


def test_projection():
    plan = parse_query("select key, val0")
    assert plan.operators == (Project(("key", "val0")),)


def test_filter_projection_matches_manual_plan():
    t = _table()
    plan = parse_query(
        "SELECT key, val0 WHERE key < 500000 AND val0 > 0.5"
    )
    assert isinstance(plan.operators[0], Filter)
    result = execute(plan, t)
    mask = (t["key"] < 500000) & (t["val0"] > 0.5)
    assert np.array_equal(result["key"], t["key"][mask])
    assert result.column_names == ("key", "val0")


def test_aggregates_with_alias():
    t = _table()
    plan = parse_query(
        "SELECT sum(val0) AS total, count(val0), mean(val1)"
        " WHERE key >= 100"
    )
    agg = plan.operators[-1]
    assert isinstance(agg, Aggregate)
    assert agg.aggs[0].alias == "total"
    assert agg.aggs[1].alias == "count_val0"
    result = execute(plan, t)
    mask = t["key"] >= 100
    assert result["total"][0] == pytest.approx(t["val0"][mask].sum())
    assert result["mean_val1"][0] == pytest.approx(t["val1"][mask].mean())


def test_group_by():
    t = Table(grouped_table(5000, n_groups=8, seed=2))
    plan = parse_query(
        "SELECT sum(value), count(value) AS n GROUP BY group"
    )
    op = plan.operators[-1]
    assert isinstance(op, GroupByAggregate)
    assert op.key == "group"
    result = execute(plan, t)
    assert result.n_rows == 8


def test_where_after_group_by_order_free():
    plan = parse_query(
        "SELECT sum(value) GROUP BY group WHERE value > 0.5"
    )
    assert isinstance(plan.operators[0], Filter)
    assert isinstance(plan.operators[1], GroupByAggregate)


def test_boolean_operators_and_parentheses():
    t = _table()
    plan = parse_query(
        "SELECT key WHERE (key < 100000 OR key > 900000) "
        "AND NOT val0 > 0.5"
    )
    result = execute(plan, t)
    mask = ((t["key"] < 100000) | (t["key"] > 900000)) & ~(t["val0"] > 0.5)
    assert np.array_equal(result["key"], t["key"][mask])


def test_comparison_spellings():
    t = _table()
    for query, op in (
        ("SELECT key WHERE key = 5", "=="),
        ("SELECT key WHERE key == 5", "=="),
        ("SELECT key WHERE key != 5", "!="),
        ("SELECT key WHERE key <> 5", "!="),
    ):
        plan = parse_query(query)
        result = execute(plan, t)
        assert result.n_rows >= 0  # parses and runs


def test_column_vs_column_comparison():
    t = _table()
    plan = parse_query("SELECT key WHERE val0 < val1")
    result = execute(plan, t)
    assert result.n_rows == int((t["val0"] < t["val1"]).sum())


def test_float_and_negative_literals():
    t = _table()
    plan = parse_query("SELECT key WHERE val0 > -0.5 AND val1 < 0.25")
    result = execute(plan, t)
    mask = (t["val0"] > -0.5) & (t["val1"] < 0.25)
    assert result.n_rows == int(mask.sum())


def test_errors():
    for bad in (
        "",                               # no SELECT
        "SELECT",                         # empty list
        "SELECT key WHERE",               # empty predicate
        "SELECT key WHERE key <",         # missing operand
        "SELECT key WHERE key ~ 5",       # unknown token
        "SELECT key, sum(val0)",          # mixed without GROUP BY
        "SELECT key GROUP BY key",        # GROUP BY without aggregates
        "SELECT key WHERE key < 1 WHERE key < 2",  # duplicate WHERE
        "SELECT key FROM t",              # unsupported clause
    ):
        with pytest.raises(SqlError):
            parse_query(bad)


def test_sql_plan_runs_on_farview():
    """End to end: SQL text offloaded to the smart-memory node."""
    from repro.farview import FarviewClient, FarviewServer

    server = FarviewServer()
    t = _table(20_000)
    server.store("t", t)
    client = FarviewClient(server)
    plan = parse_query("SELECT sum(val0) AS s WHERE key < 250000")
    outcome = client.query_offload(plan, "t")
    want = t["val0"][t["key"] < 250000].sum()
    assert outcome.result["s"][0] == pytest.approx(want)
