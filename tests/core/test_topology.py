"""Unit and property tests for stream topology helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sim import Simulator
from repro.core.stream import END_OF_STREAM, Stream
from repro.core.topology import Fork, Merge, RoundRobinSplit, Zip


def _feed(sim, stream, items):
    def producer(sim, stream):
        for item in items:
            yield stream.put(item)
        yield stream.put(END_OF_STREAM)

    sim.spawn(producer(sim, stream))


def _drain(sim, stream, into):
    def consumer(sim, stream):
        while True:
            item = yield stream.get()
            if item is END_OF_STREAM:
                return
            into.append(item)

    return sim.spawn(consumer(sim, stream))


def test_fork_broadcasts_to_all_outputs():
    sim = Simulator()
    inp = Stream(sim, 2)
    outs = [Stream(sim, 2) for _ in range(3)]
    collected = [[] for _ in range(3)]
    _feed(sim, inp, [1, 2, 3])
    fork = Fork(sim, inp, outs)
    for out, into in zip(outs, collected):
        _drain(sim, out, into)
    sim.run()
    assert collected == [[1, 2, 3]] * 3
    assert fork.items == 3


def test_fork_backpressure_from_slow_consumer():
    sim = Simulator()
    inp = Stream(sim, 1)
    fast, slow = Stream(sim, 1), Stream(sim, 1)
    _feed(sim, inp, list(range(6)))
    Fork(sim, inp, [fast, slow])
    fast_items, slow_items = [], []
    _drain(sim, fast, fast_items)

    def slow_consumer(sim, stream):
        while True:
            item = yield stream.get()
            if item is END_OF_STREAM:
                return
            yield sim.timeout(100)
            slow_items.append(item)

    proc = sim.spawn(slow_consumer(sim, slow))
    sim.run()
    assert fast_items == slow_items == list(range(6))
    assert sim.now >= 600  # the slow consumer paced everyone


def test_round_robin_split_distributes():
    sim = Simulator()
    inp = Stream(sim, 2)
    outs = [Stream(sim, 4) for _ in range(3)]
    collected = [[] for _ in range(3)]
    _feed(sim, inp, list(range(7)))
    RoundRobinSplit(sim, inp, outs)
    for out, into in zip(outs, collected):
        _drain(sim, out, into)
    sim.run()
    assert collected[0] == [0, 3, 6]
    assert collected[1] == [1, 4]
    assert collected[2] == [2, 5]


def test_merge_collects_everything_once():
    sim = Simulator()
    inps = [Stream(sim, 2) for _ in range(3)]
    out = Stream(sim, 2)
    _feed(sim, inps[0], ["a1", "a2"])
    _feed(sim, inps[1], ["b1"])
    _feed(sim, inps[2], [])
    merge = Merge(sim, inps, out)
    collected = []
    consumer = _drain(sim, out, collected)
    sim.run_until_process(consumer)
    assert sorted(collected) == ["a1", "a2", "b1"]
    assert merge.items == 3


def test_split_then_merge_is_lossless():
    sim = Simulator()
    source = Stream(sim, 2)
    lanes = [Stream(sim, 2) for _ in range(4)]
    merged = Stream(sim, 2)
    items = list(range(20))
    _feed(sim, source, items)
    RoundRobinSplit(sim, source, lanes)
    Merge(sim, lanes, merged)
    collected = []
    consumer = _drain(sim, merged, collected)
    sim.run_until_process(consumer)
    assert sorted(collected) == items


def test_zip_combines_pairs():
    sim = Simulator()
    left, right = Stream(sim, 2), Stream(sim, 2)
    out = Stream(sim, 2)
    _feed(sim, left, [1, 2, 3])
    _feed(sim, right, [10, 20, 30])
    Zip(sim, [left, right], out, fn=lambda a, b: a + b)
    collected = []
    consumer = _drain(sim, out, collected)
    sim.run_until_process(consumer)
    assert collected == [11, 22, 33]


def test_zip_stops_at_shorter_stream():
    sim = Simulator()
    left, right = Stream(sim, 2), Stream(sim, 2)
    out = Stream(sim, 2)
    _feed(sim, left, [1, 2, 3, 4, 5])
    _feed(sim, right, [10])
    zipper = Zip(sim, [left, right], out)
    collected = []
    consumer = _drain(sim, out, collected)
    sim.run_until_process(consumer)
    assert collected == [(1, 10)]
    assert zipper.items == 1


def test_default_zip_fn_tuples():
    sim = Simulator()
    a, b, c = (Stream(sim, 2) for _ in range(3))
    out = Stream(sim, 4)
    _feed(sim, a, [1])
    _feed(sim, b, [2])
    _feed(sim, c, [3])
    Zip(sim, [a, b, c], out)
    collected = []
    consumer = _drain(sim, out, collected)
    sim.run_until_process(consumer)
    assert collected == [(1, 2, 3)]


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Fork(sim, Stream(sim), [])
    with pytest.raises(ValueError):
        RoundRobinSplit(sim, Stream(sim), [])
    with pytest.raises(ValueError):
        Merge(sim, [], Stream(sim))
    with pytest.raises(ValueError):
        Zip(sim, [Stream(sim)], Stream(sim))


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(), max_size=40),
    n_lanes=st.integers(min_value=1, max_value=5),
    depth=st.integers(min_value=1, max_value=4),
)
def test_property_split_merge_roundtrip(items, n_lanes, depth):
    sim = Simulator()
    source = Stream(sim, depth)
    lanes = [Stream(sim, depth) for _ in range(n_lanes)]
    merged = Stream(sim, depth)
    _feed(sim, source, items)
    RoundRobinSplit(sim, source, lanes)
    Merge(sim, lanes, merged)
    collected = []
    consumer = _drain(sim, merged, collected)
    sim.run_until_process(consumer)
    assert sorted(collected) == sorted(items)
