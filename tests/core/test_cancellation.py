"""Cancellation, timeouts, and the latent-bug regressions they fix.

Covers the fault-layer groundwork in the sim core:

* ``Event.cancel`` semantics and ``with_timeout``;
* ``Stream.get/put(timeout=...)`` bounded waits;
* regression: an interrupted consumer used to leave an orphan getter in
  the stream and the next ``put`` silently lost its item;
* regression: a process that yielded an already-fired event could be
  stepped twice when interrupted (stale resume + interrupt throw);
* regression: a failed process nobody joined was silently swallowed.
"""

import pytest

from repro.core import (
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Stream,
    StreamTimeout,
    WaitTimeout,
    with_timeout,
)


# -- Event.cancel ---------------------------------------------------------


def test_cancel_pending_event_drops_callbacks_and_blocks_trigger():
    sim = Simulator()
    ev = Event(sim)
    fired = []
    ev.callbacks.append(lambda e: fired.append(e))
    assert ev.cancel() is True
    assert ev.cancelled
    assert not ev.callbacks
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))
    sim.run()
    assert not fired


def test_cancel_runs_on_cancel_hooks_once():
    sim = Simulator()
    ev = Event(sim)
    calls = []
    ev.on_cancel(calls.append)
    assert ev.cancel() is True
    assert ev.cancel() is False  # idempotent
    assert calls == [ev]


def test_cancel_between_trigger_and_fire_suppresses_delivery():
    """Triggered-but-unfired events are cancellable — that is how guard
    timers already sitting in the heap get disarmed."""
    sim = Simulator()
    ev = sim.timeout(5, value=7)
    delivered = []
    ev.callbacks.append(lambda e: delivered.append(e.value))
    assert ev.cancel() is True
    sim.run()
    assert not delivered


def test_cancel_after_fire_is_refused():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(7)
    sim.run()
    assert ev.cancel() is False
    assert ev.value == 7


def test_cancelled_timer_does_not_extend_the_run():
    """A cancelled long timer must be pruned, not advance the clock."""
    sim = Simulator()
    long = sim.timeout(1_000_000)
    sim.timeout(5)
    long.cancel()
    sim.run()
    assert sim.now == 5


# -- with_timeout ---------------------------------------------------------


def test_with_timeout_passes_through_a_fast_event():
    sim = Simulator()
    results = []

    def proc():
        value = yield with_timeout(sim, sim.timeout(5, value="fast"), 100)
        results.append((sim.now, value))

    sim.spawn(proc())
    sim.run()
    assert results == [(5, "fast")]
    # The abandoned 100-unit guard must not have extended the run.
    assert sim.now == 5


def test_with_timeout_raises_wait_timeout():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield with_timeout(sim, Event(sim), 30)
        except WaitTimeout as exc:
            caught.append((sim.now, exc.timeout_ps))

    sim.spawn(proc())
    sim.run()
    assert caught == [(30, 30)]


def test_with_timeout_mirrors_an_already_fired_event():
    sim = Simulator()
    inner = Event(sim)
    inner.succeed("done")
    sim.run()
    results = []

    def proc():
        value = yield with_timeout(sim, inner, 10)
        results.append(value)

    sim.spawn(proc())
    sim.run()
    assert results == ["done"]


# -- bounded stream waits -------------------------------------------------


def test_get_timeout_raises_and_item_goes_to_the_next_consumer():
    sim = Simulator()
    stream = Stream(sim, depth=1, name="s")
    log = []

    def impatient():
        try:
            yield stream.get(timeout=10)
        except StreamTimeout as exc:
            log.append(("timeout", sim.now, exc.side))

    def producer():
        yield sim.timeout(50)
        yield stream.put("late-item")

    def second_consumer():
        yield sim.timeout(20)
        item = yield stream.get()
        log.append(("got", sim.now, item))

    sim.spawn(impatient())
    sim.spawn(producer())
    sim.spawn(second_consumer())
    sim.run()
    assert ("timeout", 10, "consumer") in log
    assert ("got", 50, "late-item") in log


def test_put_timeout_discards_the_abandoned_item():
    sim = Simulator()
    stream = Stream(sim, depth=1, name="s")
    stream_log = []

    def producer():
        yield stream.put("a")
        try:
            yield stream.put("b", timeout=10)
        except StreamTimeout as exc:
            stream_log.append(("timeout", sim.now, exc.side))

    def consumer():
        yield sim.timeout(30)
        while True:
            got, item = stream.try_get()
            if not got:
                break
            stream_log.append(("got", item))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("timeout", 10, "producer") in stream_log
    assert ("got", "a") in stream_log
    assert ("got", "b") not in stream_log


# -- regression: orphaned getters/putters lose items ----------------------


def test_interrupted_getter_does_not_swallow_the_next_put():
    """Regression: the orphan Event of an interrupted consumer stayed in
    ``_getters`` and the next put handed its item to the dead waiter."""
    sim = Simulator()
    stream = Stream(sim, depth=4, name="s")
    received = []

    def doomed():
        try:
            yield stream.get()
        except Interrupt:
            pass

    def assassin(victim):
        yield sim.timeout(5)
        victim.interrupt("gave up")

    def producer():
        yield sim.timeout(10)
        for item in ("x", "y"):
            yield stream.put(item)

    def survivor():
        yield sim.timeout(6)
        for _ in range(2):
            item = yield stream.get()
            received.append(item)

    victim = sim.spawn(doomed())
    sim.spawn(assassin(victim))
    sim.spawn(producer())
    sim.spawn(survivor())
    sim.run()
    assert received == ["x", "y"], "no item may be lost to the dead waiter"


def test_timed_out_getter_does_not_swallow_the_next_put():
    """Same audit driven by the timeout path instead of interrupt."""
    sim = Simulator()
    stream = Stream(sim, depth=4, name="s")
    received = []
    timeouts = []

    def impatient():
        try:
            yield stream.get(timeout=5)
        except StreamTimeout:
            timeouts.append(sim.now)

    def producer():
        yield sim.timeout(10)
        yield stream.put("only")

    def survivor():
        yield sim.timeout(6)
        item = yield stream.get()
        received.append(item)

    sim.spawn(impatient())
    sim.spawn(producer())
    sim.spawn(survivor())
    sim.run()
    assert timeouts == [5]
    assert received == ["only"]


def test_interrupted_putter_item_never_materialises():
    """The orphaned-putter side of the audit: an interrupted producer's
    pending item must not be enqueued by a later drain."""
    sim = Simulator()
    stream = Stream(sim, depth=1, name="s")
    received = []

    def doomed_producer():
        yield stream.put("kept")
        try:
            yield stream.put("abandoned")  # blocks: stream is full
        except Interrupt:
            pass

    def assassin(victim):
        yield sim.timeout(5)
        victim.interrupt("cancelled write")

    def consumer():
        yield sim.timeout(10)
        item = yield stream.get()
        received.append(item)
        got, item = stream.try_get()
        assert not got, "the abandoned item must not appear"

    victim = sim.spawn(doomed_producer())
    sim.spawn(assassin(victim))
    sim.spawn(consumer())
    sim.run()
    assert received == ["kept"]


# -- regression: interrupt after a fired-event yield ----------------------


def test_interrupt_after_fired_yield_steps_once():
    """Regression: with a stale ``_resume_from_fired`` callback queued,
    an interrupt used to step the process twice — the stale resume won,
    the Interrupt landed at the *next* yield, and the handler never ran."""
    sim = Simulator()
    log = []

    def victim():
        fired = Event(sim)
        fired.succeed("v")
        yield sim.timeout(1)  # let `fired` pass through the heap
        try:
            yield fired  # already fired -> immediate-resume path
            log.append("resumed")
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(10)
        log.append("finished")

    def assassin(target):
        yield sim.timeout(1)
        target.interrupt("now")

    target = sim.spawn(victim())
    sim.spawn(assassin(target))
    sim.run()
    assert log == ["interrupted", "finished"]


# -- regression: unjoined failed processes --------------------------------


def _interrupt_killed_pair(sim):
    """A victim that ignores Interrupt (so the kill fails it) + killer."""

    def victim():
        yield Event(sim)  # waits forever unless killed

    def killer(target):
        yield sim.timeout(5)
        target.interrupt("die")

    target = sim.spawn(victim(), name="victim")
    sim.spawn(killer(target))
    return target


def test_unjoined_failed_process_is_reraised_at_run_exit():
    """Regression: a process failed by an unhandled interrupt, with no
    joiner, used to vanish without a trace at ``run()`` exit."""
    sim = Simulator()
    _interrupt_killed_pair(sim)
    with pytest.raises(SimulationError, match="killed by interrupt"):
        sim.run()


def test_defused_failure_stays_silent():
    sim = Simulator()
    target = _interrupt_killed_pair(sim)
    target.defuse()
    sim.run()
    assert sim.now == 5


def test_joined_failure_is_not_double_reported():
    sim = Simulator()
    caught = []

    def joiner(target):
        try:
            yield target
        except SimulationError:
            caught.append(sim.now)

    target = _interrupt_killed_pair(sim)
    sim.spawn(joiner(target))
    sim.run()
    assert caught == [5]


def test_bounded_run_does_not_report_future_failures():
    sim = Simulator()

    def victim():
        yield sim.timeout(100)

    def killer(target):
        yield sim.timeout(50)
        target.interrupt("die")

    target = sim.spawn(victim())
    sim.spawn(killer(target))
    sim.run(until=10)  # the kill hasn't happened yet
    assert sim.now == 10
