"""Unit and property tests for bounded streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sim import SimulationError, Simulator
from repro.core.stream import Burst, END_OF_STREAM, Stream


def test_put_then_get_preserves_fifo_order():
    sim = Simulator()
    stream = Stream(sim, depth=4)
    out = []

    def producer(sim, stream):
        for i in range(3):
            yield stream.put(i)

    def consumer(sim, stream):
        for _ in range(3):
            item = yield stream.get()
            out.append(item)

    sim.spawn(producer(sim, stream))
    sim.spawn(consumer(sim, stream))
    sim.run()
    assert out == [0, 1, 2]


def test_full_stream_blocks_producer():
    sim = Simulator()
    stream = Stream(sim, depth=1)
    times = []

    def producer(sim, stream):
        yield stream.put("a")
        times.append(("a-put", sim.now))
        yield stream.put("b")
        times.append(("b-put", sim.now))

    def consumer(sim, stream):
        yield sim.timeout(50)
        yield stream.get()

    sim.spawn(producer(sim, stream))
    sim.spawn(consumer(sim, stream))
    sim.run()
    assert ("a-put", 0) in times
    assert ("b-put", 50) in times
    assert stream.stats.producer_stall_events == 1


def test_empty_stream_blocks_consumer():
    sim = Simulator()
    stream = Stream(sim, depth=2)
    got_at = []

    def consumer(sim, stream):
        item = yield stream.get()
        got_at.append((item, sim.now))

    def producer(sim, stream):
        yield sim.timeout(30)
        yield stream.put("x")

    sim.spawn(consumer(sim, stream))
    sim.spawn(producer(sim, stream))
    sim.run()
    assert got_at == [("x", 30)]
    assert stream.stats.consumer_stall_events == 1


def test_depth_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Stream(sim, depth=0)


def test_try_get_nonblocking():
    sim = Simulator()
    stream = Stream(sim, depth=2)
    ok, item = stream.try_get()
    assert not ok and item is None

    def producer(sim, stream):
        yield stream.put(9)

    sim.spawn(producer(sim, stream))
    sim.run()
    ok, item = stream.try_get()
    assert ok and item == 9


def test_burst_counts_accumulate_in_stats():
    sim = Simulator()
    stream = Stream(sim, depth=4)

    def producer(sim, stream):
        yield stream.put(Burst(payload=None, count=100))
        yield stream.put(Burst(payload=None, count=50))

    def consumer(sim, stream):
        yield stream.get()
        yield stream.get()

    sim.spawn(producer(sim, stream))
    sim.spawn(consumer(sim, stream))
    sim.run()
    assert stream.stats.items == 150
    assert stream.stats.puts == 2


def test_negative_burst_count_rejected():
    with pytest.raises(ValueError):
        Burst(payload=None, count=-1)


def test_end_of_stream_is_singleton():
    assert END_OF_STREAM is type(END_OF_STREAM)()
    assert repr(END_OF_STREAM) == "END_OF_STREAM"


def test_handoff_to_waiting_consumer_skips_queue():
    sim = Simulator()
    stream = Stream(sim, depth=1)
    order = []

    def consumer(sim, stream, tag):
        item = yield stream.get()
        order.append((tag, item))

    def producer(sim, stream):
        yield sim.timeout(5)
        yield stream.put("first")
        yield stream.put("second")

    sim.spawn(consumer(sim, stream, "c1"))
    sim.spawn(consumer(sim, stream, "c2"))
    sim.spawn(producer(sim, stream))
    sim.run()
    assert order == [("c1", "first"), ("c2", "second")]


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=0, max_size=40),
    depth=st.integers(min_value=1, max_value=8),
)
def test_property_stream_is_lossless_and_ordered(items, depth):
    """Whatever the depth, every item comes out exactly once, in order."""
    sim = Simulator()
    stream = Stream(sim, depth=depth)
    out = []

    def producer(sim, stream):
        for item in items:
            yield stream.put(item)
        yield stream.put(END_OF_STREAM)

    def consumer(sim, stream):
        while True:
            item = yield stream.get()
            if item is END_OF_STREAM:
                return
            out.append(item)

    sim.spawn(producer(sim, stream))
    c = sim.spawn(consumer(sim, stream))
    sim.run_until_process(c)
    assert out == items


@settings(max_examples=30, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=0, max_value=30),
)
def test_property_high_watermark_never_exceeds_depth(depth, n):
    sim = Simulator()
    stream = Stream(sim, depth=depth)

    def producer(sim, stream):
        for i in range(n):
            yield stream.put(i)

    def consumer(sim, stream):
        for _ in range(n):
            yield sim.timeout(3)
            yield stream.get()

    sim.spawn(producer(sim, stream))
    sim.spawn(consumer(sim, stream))
    sim.run()
    assert stream.stats.high_watermark <= depth


def test_try_put_nonblocking():
    sim = Simulator()
    stream = Stream(sim, depth=1)
    assert stream.try_put("a")
    assert not stream.try_put("b"), "full stream must refuse without blocking"
    ok, item = stream.try_get()
    assert ok and item == "a"
    assert stream.try_put("b")
    assert stream.stats.puts == 2


def test_try_put_hands_off_to_blocked_consumer():
    sim = Simulator()
    stream = Stream(sim, depth=1)
    got = []

    def consumer(sim, stream):
        item = yield stream.get()
        got.append((item, sim.now))

    def producer(sim, stream):
        yield sim.timeout(10)
        assert stream.try_put("x")

    sim.spawn(consumer(sim, stream))
    sim.spawn(producer(sim, stream))
    sim.run()
    assert got == [("x", 10)]
    assert stream.stats.gets == 1


def test_gets_counts_direct_handoffs_like_queue_pops():
    """On a drained stream ``gets == puts`` regardless of whether items
    went through the queue or straight to a blocked consumer."""
    sim = Simulator()
    stream = Stream(sim, depth=1)
    received = []

    def producer(sim, stream):
        for i in range(6):
            yield stream.put(i)

    def consumer(sim, stream):
        for _ in range(6):
            item = yield stream.get()
            received.append(item)

    sim.spawn(consumer(sim, stream))  # consumer first: handoffs happen
    sim.spawn(producer(sim, stream))
    sim.run()
    assert received == list(range(6))
    assert stream.stats.puts == 6
    assert stream.stats.gets == 6
