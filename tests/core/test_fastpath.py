"""Analytic fast-forward: equivalence with the stepped engine.

The contract under test (see ``repro.core.fastpath``): for eligible
Source → kernels → Sink chains, solving the max-plus recurrence and
jumping the clock must reproduce the stepped engine's observable
results *exactly* — payloads, completion times, kernel stats, and
stream counters.  Anything the solver cannot prove eligible must fall
back to the engine unchanged.
"""

import os

import pytest

from repro.core import (
    Burst,
    BurstKernel,
    ItemKernel,
    KernelSpec,
    Simulator,
    Sink,
    Source,
    Stream,
)
from repro.core import fastpath
from repro.core.fastpath import (
    analytic_pipeline_estimate,
    set_fast_forward,
    try_fast_forward,
)


@pytest.fixture(autouse=True)
def _reset_override():
    yield
    set_fast_forward(None)


def _build_item_chain(sim, n_items, kernel_params, stream_depth=4,
                      interval_ps=0, fns=None):
    n_kernels = len(kernel_params)
    streams = [
        Stream(sim, depth=stream_depth, name=f"s{i}")
        for i in range(n_kernels + 1)
    ]
    Source(sim, streams[0], range(n_items), interval_ps=interval_ps)
    kernels = []
    for i, (ii, depth) in enumerate(kernel_params):
        fn = fns[i] if fns else (lambda x: x)
        kernels.append(
            ItemKernel(sim, KernelSpec(name=f"k{i}", ii=ii, depth=depth),
                       fn, streams[i], streams[i + 1])
        )
    return streams, kernels, Sink(sim, streams[-1])


def _observables(sim, streams, kernels, sink):
    """Everything fast-forward promises to reproduce exactly."""
    return {
        "now": sim.now,
        "done_at": sink.done_at_ps,
        "payloads": sink.payloads,
        "sink_items": sink.items,
        "kernels": [
            (k.items_in, k.items_out, k.busy_ps, k.stall_in_ps,
             k.stall_out_ps)
            for k in kernels
        ],
        "streams": [
            (s.stats.puts, s.stats.gets, s.stats.items,
             s.stats.producer_stall_ps, s.stats.consumer_stall_ps)
            for s in streams
        ],
    }


def _run_both(build):
    """Run the same chain with fast-forward off and on."""
    set_fast_forward(False)
    sim = Simulator()
    parts = build(sim)
    sim.run()
    engine = _observables(sim, *parts)

    set_fast_forward(True)
    sim = Simulator()
    parts = build(sim)
    before = fastpath.counters["applied"]
    sim.run()
    assert fastpath.counters["applied"] == before + 1, (
        "eligible chain must take the fast path"
    )
    fast = _observables(sim, *parts)
    return engine, fast


@pytest.mark.parametrize("kernel_params", [
    [(1, 1)],
    [(1, 4), (2, 6), (1, 3)],
    [(3, 8), (1, 1), (2, 2), (4, 12)],
])
@pytest.mark.parametrize("interval_ps", [0, 3333])
def test_item_chain_matches_engine(kernel_params, interval_ps):
    def build(sim):
        return _build_item_chain(
            sim, 200, kernel_params, interval_ps=interval_ps
        )

    engine, fast = _run_both(build)
    assert fast == engine


def test_item_chain_with_drops_matches_engine():
    def build(sim):
        return _build_item_chain(
            sim, 300, [(1, 4), (2, 3)],
            fns=[lambda x: x if x % 3 else None, lambda x: x * 2],
        )

    engine, fast = _run_both(build)
    assert fast == engine
    assert fast["payloads"] == [x * 2 for x in range(300) if x % 3]


def test_burst_chain_matches_engine():
    def build(sim):
        streams = [Stream(sim, depth=2, name=f"s{i}") for i in range(3)]
        Source(sim, streams[0],
               [Burst(i, count=i % 7 + 1) for i in range(60)])
        kernels = [
            BurstKernel(sim, KernelSpec(name="k0", ii=2, depth=9),
                        lambda b: b, streams[0], streams[1]),
            BurstKernel(sim, KernelSpec(name="k1", ii=1, depth=4, unroll=2),
                        lambda b: b, streams[1], streams[2]),
        ]
        return streams, kernels, Sink(sim, streams[2])

    engine, fast = _run_both(build)
    assert fast == engine


def test_source_direct_to_sink_matches_engine():
    def build(sim):
        stream = Stream(sim, depth=1, name="s")
        Source(sim, stream, range(1000), interval_ps=100)
        return [stream], [], Sink(sim, stream)

    engine, fast = _run_both(build)
    assert fast == engine


def test_multiple_independent_chains_match_engine():
    def build(sim):
        parts = []
        for c in range(3):
            streams = [
                Stream(sim, depth=3, name=f"c{c}s{i}") for i in range(2)
            ]
            Source(sim, streams[0], range(50 * (c + 1)))
            kernels = [
                ItemKernel(sim, KernelSpec(name=f"c{c}k", ii=c + 1, depth=4),
                           lambda x: x, streams[0], streams[1])
            ]
            parts.append((streams, kernels, Sink(sim, streams[1])))
        return parts

    set_fast_forward(False)
    sim = Simulator()
    parts = build(sim)
    sim.run()
    engine = [_observables(sim, *p) for p in parts]

    set_fast_forward(True)
    sim = Simulator()
    parts = build(sim)
    sim.run()
    fast = [_observables(sim, *p) for p in parts]
    assert fast == engine


# -- fallback conditions ---------------------------------------------------


def test_foreign_process_forces_fallback():
    """An unregistered process makes the topology unprovable: engine runs."""

    def build(sim):
        parts = _build_item_chain(sim, 100, [(1, 4)])

        def bystander():
            yield sim.timeout(5)

        sim.spawn(bystander(), name="bystander")
        return parts

    set_fast_forward(True)
    sim = Simulator()
    parts = build(sim)
    before = fastpath.counters["fallback"]
    sim.run()
    assert fastpath.counters["fallback"] == before + 1

    set_fast_forward(False)
    sim2 = Simulator()
    parts2 = build(sim2)
    sim2.run()
    assert _observables(sim, *parts) == _observables(sim2, *parts2)


def test_tracer_forces_fallback():
    from repro.obs import Tracer

    set_fast_forward(True)
    sim = Simulator(tracer=Tracer())
    streams, kernels, sink = _build_item_chain(sim, 20, [(1, 2)])
    before = fastpath.counters["applied"]
    sim.run()
    assert fastpath.counters["applied"] == before
    assert sink.items == 20


def test_disabled_override_uses_engine():
    set_fast_forward(False)
    sim = Simulator()
    _build_item_chain(sim, 20, [(1, 2)])
    before = fastpath.counters["applied"]
    sim.run()
    assert fastpath.counters["applied"] == before


def test_env_knob_disables(monkeypatch):
    set_fast_forward(None)
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert not fastpath.is_enabled()
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    assert fastpath.is_enabled()


def test_run_until_never_fast_forwards():
    """Bounded runs must step, or `until` semantics would break."""
    set_fast_forward(True)
    sim = Simulator()
    streams, kernels, sink = _build_item_chain(sim, 1000, [(1, 4)])
    before = fastpath.counters["applied"]
    sim.run(until=50)
    assert fastpath.counters["applied"] == before
    assert sim.now <= 50
    assert sink.done_at_ps is None
    sim.run()  # resumes on the engine; fastpath stays off mid-flight
    assert sink.items == 1000


def test_burst_type_error_still_raised():
    set_fast_forward(True)
    sim = Simulator()
    streams = [Stream(sim, depth=2, name=f"s{i}") for i in range(2)]
    Source(sim, streams[0], range(5))  # raw ints into a BurstKernel
    BurstKernel(sim, KernelSpec(name="k", ii=1, depth=1),
                lambda b: b, streams[0], streams[1])
    Sink(sim, streams[1])
    with pytest.raises(TypeError):
        sim.run()


def test_try_fast_forward_requires_components():
    sim = Simulator()
    assert not try_fast_forward(sim)


# -- the analytic estimator ------------------------------------------------


def test_analytic_pipeline_estimate_matches_simulation():
    specs = [
        KernelSpec(name="a", ii=1, depth=4),
        KernelSpec(name="b", ii=2, depth=6),
    ]
    n = 500
    sim = Simulator()
    streams, kernels, sink = _build_item_chain(
        sim, n, [(1, 4), (2, 6)], stream_depth=64
    )
    sim.run()
    estimate = analytic_pipeline_estimate(specs, n)
    # The estimate ignores finite FIFO depths; with deep streams it
    # must land within one bottleneck period of the simulated time.
    bottleneck_ps = max(
        s.clock.cycles_to_ps(s.ii) for s in specs
    )
    assert abs(sink.done_at_ps - estimate) <= 2 * bottleneck_ps
