"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.sim import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 10
    assert sim.now == 10


def test_zero_delay_timeout_fires_at_now():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_then_fifo_order():
    sim = Simulator()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append(name)

    sim.spawn(worker(sim, "late", 5))
    sim.spawn(worker(sim, "early", 1))
    sim.spawn(worker(sim, "tie-a", 3))
    sim.spawn(worker(sim, "tie-b", 3))
    sim.run()
    assert log == ["early", "tie-a", "tie-b", "late"]


def test_process_join_returns_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(7)
        return "done"

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return (sim.now, value)

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == (7, "done")


def test_join_already_finished_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return 42

    def parent(sim, child_proc):
        yield sim.timeout(10)
        value = yield child_proc
        return value

    c = sim.spawn(child(sim))
    p = sim.spawn(parent(sim, c))
    sim.run()
    assert p.value == 42
    assert sim.now == 10


def test_manual_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim, gate):
        value = yield gate
        return (sim.now, value)

    def opener(sim, gate):
        yield sim.timeout(4)
        gate.succeed("open")

    w = sim.spawn(waiter(sim, gate))
    sim.spawn(opener(sim, gate))
    sim.run()
    assert w.value == (4, "open")


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim, gate):
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    w = sim.spawn(waiter(sim, gate))
    gate.fail(ValueError("boom"))
    sim.run()
    assert w.value == "caught boom"


def test_uncaught_process_failure_raises_from_run_until():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim, gate):
        yield gate

    w = sim.spawn(waiter(sim, gate))
    gate.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_process(w)


def test_all_of_waits_for_every_member():
    sim = Simulator()

    def proc(sim):
        values = yield all_of(sim, [sim.timeout(3, "a"), sim.timeout(8, "b")])
        return (sim.now, values)

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == (8, ["a", "b"])


def test_any_of_fires_on_first_member():
    sim = Simulator()

    def proc(sim):
        first = yield any_of(sim, [sim.timeout(3, "a"), sim.timeout(8, "b")])
        return (sim.now, first.value)

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == (3, "a")


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        values = yield all_of(sim, [])
        return values

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == []


def test_interrupt_reaches_waiting_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    def interrupter(sim, victim):
        yield sim.timeout(5)
        victim.interrupt("wake up")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert victim.value == ("interrupted", 5, "wake up")


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_limits_time():
    sim = Simulator()
    log = []

    def worker(sim):
        for _ in range(10):
            yield sim.timeout(10)
            log.append(sim.now)

    sim.spawn(worker(sim))
    sim.run(until=35)
    assert log == [10, 20, 30]
    assert sim.now == 35


def test_run_until_process_detects_deadlock():
    sim = Simulator()
    gate = sim.event()

    def waiter(sim, gate):
        yield gate

    w = sim.spawn(waiter(sim, gate))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_process(w)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run_until_process(p)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(12)
    assert sim.peek() == 12
    sim.run()
    assert sim.peek() is None
