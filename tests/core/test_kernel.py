"""Unit tests for kernel specs and the burst/item kernel processes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocking import FABRIC_300MHZ
from repro.core.kernel import BurstKernel, ItemKernel, KernelSpec, Sink, Source
from repro.core.sim import Simulator
from repro.core.stream import Burst, Stream


def test_latency_formula_matches_hls():
    spec = KernelSpec("k", ii=2, depth=10)
    # depth + (n-1) * ii
    assert spec.latency_cycles(1) == 10
    assert spec.latency_cycles(5) == 10 + 4 * 2
    assert spec.latency_cycles(0) == 0


def test_unroll_divides_initiations():
    spec = KernelSpec("k", ii=1, depth=4, unroll=4)
    assert spec.initiations(16) == 4
    assert spec.initiations(17) == 5
    assert spec.latency_cycles(16) == 4 + 3


def test_throughput_scales_with_unroll_and_ii():
    base = KernelSpec("k", ii=1, depth=1, clock=FABRIC_300MHZ)
    slow = KernelSpec("k2", ii=4, depth=1, clock=FABRIC_300MHZ)
    wide = KernelSpec("k3", ii=1, depth=1, unroll=8, clock=FABRIC_300MHZ)
    assert slow.throughput_items_per_sec() == pytest.approx(
        base.throughput_items_per_sec() / 4
    )
    assert wide.throughput_items_per_sec() == pytest.approx(
        base.throughput_items_per_sec() * 8
    )


def test_replicate_scales_unroll_and_resources():
    from repro.core.device import ResourceVector

    spec = KernelSpec("k", ii=1, depth=2, resources=ResourceVector(lut=100, dsp=2))
    rep = spec.replicate(4)
    assert rep.unroll == 4
    assert rep.resources.lut == 400
    assert rep.resources.dsp == 8


def test_invalid_spec_parameters_rejected():
    with pytest.raises(ValueError):
        KernelSpec("k", ii=0)
    with pytest.raises(ValueError):
        KernelSpec("k", depth=0)
    with pytest.raises(ValueError):
        KernelSpec("k", unroll=0)
    with pytest.raises(ValueError):
        KernelSpec("k").replicate(0)


def _run_burst_chain(specs, bursts, fn=None):
    """Build source -> kernels -> sink over the given bursts; return sink."""
    sim = Simulator()
    fn = fn or (lambda burst: burst)
    streams = [Stream(sim, depth=2, name=f"s{i}") for i in range(len(specs) + 1)]
    Source(sim, streams[0], bursts)
    for spec, inp, out in zip(specs, streams[:-1], streams[1:]):
        BurstKernel(sim, spec, fn, inp, out)
    sink = Sink(sim, streams[-1])
    sim.run()
    assert sink.done_at_ps is not None
    return sim, sink


def test_burst_kernel_timing_single_burst():
    spec = KernelSpec("k", ii=2, depth=10, clock=FABRIC_300MHZ)
    n = 100
    sim, sink = _run_burst_chain([spec], [Burst(payload=None, count=n)])
    assert sink.done_at_ps == spec.clock.cycles_to_ps(spec.latency_cycles(n))
    assert sink.items == n


def test_burst_kernel_functional_transform():
    spec = KernelSpec("double", ii=1, depth=1)

    def double(burst):
        return Burst(payload=[2 * x for x in burst.payload], count=burst.count)

    sim, sink = _run_burst_chain(
        [spec], [Burst(payload=[1, 2, 3], count=3)], fn=double
    )
    assert sink.payloads == [[2, 4, 6]]


def test_burst_kernel_can_drop_bursts():
    spec = KernelSpec("filter", ii=1, depth=1)

    def drop_odd(burst):
        return burst if burst.meta.get("keep") else None

    sim = Simulator()
    s_in = Stream(sim, depth=2)
    s_out = Stream(sim, depth=2)
    bursts = [
        Burst(payload=1, count=1, meta={"keep": True}),
        Burst(payload=2, count=1, meta={"keep": False}),
        Burst(payload=3, count=1, meta={"keep": True}),
    ]
    Source(sim, s_in, bursts)
    BurstKernel(sim, spec, drop_odd, s_in, s_out)
    sink = Sink(sim, s_out)
    sim.run()
    assert sink.payloads == [1, 3]


def test_item_kernel_matches_hls_latency():
    spec = KernelSpec("k", ii=3, depth=12, clock=FABRIC_300MHZ)
    sim = Simulator()
    s_in = Stream(sim, depth=2)
    s_out = Stream(sim, depth=2)
    n = 20
    Source(sim, s_in, list(range(n)))
    ItemKernel(sim, spec, lambda x: x, s_in, s_out)
    sink = Sink(sim, s_out)
    sim.run()
    assert sink.done_at_ps == spec.clock.cycles_to_ps(spec.latency_cycles(n))
    assert sink.payloads == list(range(n))


def test_item_kernel_rejects_unrolled_spec():
    spec = KernelSpec("k", unroll=2)
    sim = Simulator()
    with pytest.raises(ValueError):
        ItemKernel(sim, spec, lambda x: x, Stream(sim), Stream(sim))


@settings(max_examples=25, deadline=None)
@given(
    ii=st.integers(min_value=1, max_value=4),
    depth=st.integers(min_value=1, max_value=16),
    n=st.integers(min_value=1, max_value=60),
)
def test_property_burst_and_item_kernels_agree_on_total_cycles(ii, depth, n):
    """The burst abstraction must not change the total cycle count."""
    spec = KernelSpec("k", ii=ii, depth=depth)

    # Item-mode run.
    sim_a = Simulator()
    sa_in, sa_out = Stream(sim_a, depth=4), Stream(sim_a, depth=4)
    Source(sim_a, sa_in, list(range(n)))
    ItemKernel(sim_a, spec, lambda x: x, sa_in, sa_out)
    sink_a = Sink(sim_a, sa_out)
    sim_a.run()

    # Burst-mode run (one burst of n items).
    sim_b = Simulator()
    sb_in, sb_out = Stream(sim_b, depth=4), Stream(sim_b, depth=4)
    Source(sim_b, sb_in, [Burst(payload=None, count=n)])
    BurstKernel(sim_b, spec, lambda b: b, sb_in, sb_out)
    sink_b = Sink(sim_b, sb_out)
    sim_b.run()

    assert sink_a.done_at_ps == sink_b.done_at_ps


def test_chain_of_burst_kernels_fill_latency_accumulates():
    specs = [
        KernelSpec("k1", ii=1, depth=5),
        KernelSpec("k2", ii=1, depth=7),
    ]
    n = 50
    sim, sink = _run_burst_chain(specs, [Burst(payload=None, count=n)])
    # Burst moves through k1 fully, then k2; each stage costs its full
    # HLS latency depth + (n-1)*ii.
    expected = (5 + n - 1) + (7 + n - 1)
    assert sink.done_at_ps == FABRIC_300MHZ.cycles_to_ps(expected)


def test_source_interval_paces_items():
    sim = Simulator()
    stream = Stream(sim, depth=8)
    Source(sim, stream, [1, 2, 3], interval_ps=100)
    sink = Sink(sim, stream)
    sim.run()
    assert sink.done_at_ps == 300
    assert sink.items == 3
