"""Unit tests for clock domains."""

import pytest

from repro.core.clocking import (
    FABRIC_200MHZ,
    FABRIC_300MHZ,
    HBM_450MHZ,
    PS_PER_NS,
    ClockDomain,
)


def test_from_mhz_rounds_period_to_ps():
    clk = ClockDomain.from_mhz("test", 250.0)
    assert clk.period_ps == 4000
    assert clk.freq_mhz == pytest.approx(250.0)


def test_300mhz_period():
    assert FABRIC_300MHZ.period_ps == 3333
    # Rounding error below 0.03%.
    assert FABRIC_300MHZ.freq_mhz == pytest.approx(300.0, rel=3e-4)


def test_cycles_to_ps_roundtrip():
    clk = FABRIC_200MHZ
    assert clk.cycles_to_ps(1) == 5000
    assert clk.ps_to_cycles(5000) == 1
    assert clk.ps_to_cycles(9999) == 1
    assert clk.ps_to_cycles(10_000) == 2


def test_cycles_to_seconds():
    assert FABRIC_200MHZ.cycles_to_seconds(200_000_000) == pytest.approx(1.0)


def test_fractional_cycles_supported():
    assert FABRIC_200MHZ.cycles_to_ps(0.5) == 2500


def test_invalid_clock_rejected():
    with pytest.raises(ValueError):
        ClockDomain("bad", 0)
    with pytest.raises(ValueError):
        ClockDomain.from_mhz("bad", -1)


def test_hbm_clock_faster_than_fabric():
    assert HBM_450MHZ.period_ps < FABRIC_300MHZ.period_ps


def test_ps_constants():
    assert PS_PER_NS == 1000
