"""Unit tests for the dataflow throughput solver."""

import pytest

from repro.core.clocking import FABRIC_300MHZ
from repro.core.dataflow import DataflowGraph, RateStage
from repro.core.device import ResourceVector
from repro.core.kernel import KernelSpec


def _chain(*specs, gains=None):
    graph = DataflowGraph("chain")
    names = [graph.add(s, source=(i == 0)) for i, s in enumerate(specs)]
    gains = gains or [1.0] * (len(specs) - 1)
    for up, down, g in zip(names[:-1], names[1:], gains):
        graph.connect(up, down, gain=g)
    return graph


def test_single_stage_rate():
    spec = KernelSpec("k", ii=1, depth=1, clock=FABRIC_300MHZ)
    report = _chain(spec).solve()
    assert report.source_rate == pytest.approx(FABRIC_300MHZ.freq_hz)
    assert report.bottleneck == "k"


def test_slowest_stage_wins():
    fast = KernelSpec("fast", ii=1, depth=1)
    slow = KernelSpec("slow", ii=4, depth=1)
    report = _chain(fast, slow).solve()
    assert report.bottleneck == "slow"
    assert report.source_rate == pytest.approx(slow.throughput_items_per_sec())


def test_filter_gain_relaxes_downstream_bound():
    scan = KernelSpec("scan", ii=1, depth=1)
    # Aggregation kernel is 10x slower, but the filter passes only 5%.
    agg = KernelSpec("agg", ii=10, depth=1)
    report = _chain(scan, agg, gains=[0.05]).solve()
    # agg sees 0.05 items per source item: bound = rate/0.05 >> scan rate.
    assert report.bottleneck == "scan"


def test_expander_gain_tightens_downstream_bound():
    source = KernelSpec("src", ii=1, depth=1)
    sink = KernelSpec("snk", ii=1, depth=1)
    report = _chain(source, sink, gains=[8.0]).solve()
    assert report.bottleneck == "snk"
    assert report.source_rate == pytest.approx(
        sink.throughput_items_per_sec() / 8.0
    )


def test_rate_stage_models_memory_port():
    scan = KernelSpec("scan", ii=1, depth=1)
    port = RateStage("hbm-port", rate_items_per_sec=1e6, latency_seconds=1e-7)
    graph = DataflowGraph()
    graph.add(port, source=True)
    graph.add(scan)
    graph.connect("hbm-port", "scan")
    report = graph.solve()
    assert report.bottleneck == "hbm-port"
    assert report.source_rate == pytest.approx(1e6)
    assert report.fill_latency_seconds >= 1e-7


def test_fill_latency_is_critical_path():
    a = KernelSpec("a", ii=1, depth=10)
    b = KernelSpec("b", ii=1, depth=20)
    report = _chain(a, b).solve()
    expected = FABRIC_300MHZ.cycles_to_seconds(30)
    assert report.fill_latency_seconds == pytest.approx(expected)


def test_diamond_merge_adds_volumes():
    graph = DataflowGraph("diamond")
    graph.add(KernelSpec("src", ii=1, depth=1), source=True)
    graph.add(KernelSpec("left", ii=1, depth=1))
    graph.add(KernelSpec("right", ii=1, depth=1))
    graph.add(KernelSpec("merge", ii=1, depth=1))
    graph.connect("src", "left", gain=0.5)
    graph.connect("src", "right", gain=0.5)
    graph.connect("left", "merge")
    graph.connect("right", "merge")
    report = graph.solve()
    merge = next(s for s in report.stages if s.name == "merge")
    assert merge.gain_from_source == pytest.approx(1.0)


def test_cycle_detection():
    graph = DataflowGraph()
    graph.add(KernelSpec("a", ii=1, depth=1), source=True)
    graph.add(KernelSpec("b", ii=1, depth=1))
    graph.connect("a", "b")
    graph.connect("b", "a")
    with pytest.raises(ValueError, match="cycle"):
        graph.solve()


def test_duplicate_stage_rejected():
    graph = DataflowGraph()
    graph.add(KernelSpec("a"))
    with pytest.raises(ValueError, match="duplicate"):
        graph.add(KernelSpec("a"))


def test_unknown_edge_endpoint_rejected():
    graph = DataflowGraph()
    graph.add(KernelSpec("a"))
    with pytest.raises(KeyError):
        graph.connect("a", "missing")


def test_total_resources_sums_kernels_only():
    graph = DataflowGraph()
    graph.add(
        KernelSpec("a", resources=ResourceVector(lut=100, dsp=2)), source=True
    )
    graph.add(KernelSpec("b", resources=ResourceVector(lut=50)))
    graph.add(RateStage("port", rate_items_per_sec=1e9))
    graph.connect("a", "b")
    graph.connect("b", "port")
    total = graph.total_resources()
    assert total.lut == 150
    assert total.dsp == 2


def test_time_for_items_fill_plus_stream():
    spec = KernelSpec("k", ii=1, depth=300, clock=FABRIC_300MHZ)
    report = _chain(spec).solve()
    t = report.time_for_items(3_000_000)
    # ~1 us fill + ~10 ms streaming at (rounded) 300 MHz.
    expected = FABRIC_300MHZ.cycles_to_seconds(300 + 3_000_000)
    assert t == pytest.approx(expected, rel=1e-9)
    assert report.time_for_items(0) == 0.0


def test_solver_matches_event_simulation_for_chain():
    """Analytic solve() agrees with the burst event simulation."""
    from repro.core.kernel import BurstKernel, Sink, Source
    from repro.core.sim import Simulator
    from repro.core.stream import Burst, Stream

    specs = [
        KernelSpec("k1", ii=2, depth=8),
        KernelSpec("k2", ii=3, depth=16),
    ]
    n = 1000
    report = _chain(*specs).solve()

    sim = Simulator()
    streams = [Stream(sim, depth=2) for _ in range(3)]
    Source(sim, streams[0], [Burst(payload=None, count=n)])
    for spec, inp, out in zip(specs, streams[:-1], streams[1:]):
        BurstKernel(sim, spec, lambda b: b, inp, out)
    sink = Sink(sim, streams[-1])
    sim.run()

    simulated = sink.done_at_ps / 1e12
    analytic = report.time_for_items(n)
    # One whole-dataset burst serialises the stages; the analytic model
    # pipelines them. They agree within the sum-of-occupancies bound.
    assert simulated == pytest.approx(analytic, rel=0.75)
    assert simulated >= analytic * 0.99
