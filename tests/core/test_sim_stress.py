"""Stress and determinism properties of the event engine.

The whole reproduction rests on the simulator being deterministic and
causally sound; these properties check that under randomized load.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sim import Simulator
from repro.core.stream import END_OF_STREAM, Stream


def _random_workload(seed: int, n_processes: int):
    """Spawn processes doing random timeout/stream work; return a log."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    log: list[tuple[int, int, int]] = []
    streams = [Stream(sim, depth=2) for _ in range(3)]
    delays = rng.integers(1, 50, size=(n_processes, 8))
    choices = rng.integers(0, 3, size=(n_processes, 8))

    def worker(sim, pid):
        for step in range(8):
            yield sim.timeout(int(delays[pid, step]))
            stream = streams[choices[pid, step]]
            if pid % 2 == 0:
                yield stream.put((pid, step))
            else:
                ok, item = stream.try_get()
                if not ok:
                    continue
            log.append((sim.now, pid, step))

    for pid in range(n_processes):
        sim.spawn(worker(sim, pid), name=f"w{pid}")
    sim.run()
    return log, sim.now


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_processes=st.integers(min_value=1, max_value=24),
)
def test_property_runs_are_deterministic(seed, n_processes):
    """Identical seeds give bit-identical event logs and end times."""
    log_a, end_a = _random_workload(seed, n_processes)
    log_b, end_b = _random_workload(seed, n_processes)
    assert log_a == log_b
    assert end_a == end_b


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_time_is_monotone(seed):
    """Logged timestamps never decrease (causality)."""
    log, _ = _random_workload(seed, 12)
    times = [t for t, _, _ in log]
    assert times == sorted(times)


def test_thousand_processes_complete():
    sim = Simulator()
    done = []

    def worker(sim, pid):
        yield sim.timeout(pid % 97 + 1)
        done.append(pid)

    for pid in range(1000):
        sim.spawn(worker(sim, pid), name=f"p{pid}")
    sim.run()
    assert sorted(done) == list(range(1000))


def test_deep_producer_consumer_chain():
    """A 50-stage chain of streams moves every item through."""
    sim = Simulator()
    n_stages, n_items = 50, 20
    streams = [Stream(sim, depth=1) for _ in range(n_stages + 1)]

    def stage(sim, inp, out):
        while True:
            item = yield inp.get()
            if item is END_OF_STREAM:
                yield out.put(END_OF_STREAM)
                return
            yield sim.timeout(1)
            yield out.put(item)

    def producer(sim, out):
        for i in range(n_items):
            yield out.put(i)
        yield out.put(END_OF_STREAM)

    received = []

    def consumer(sim, inp):
        while True:
            item = yield inp.get()
            if item is END_OF_STREAM:
                return
            received.append(item)

    sim.spawn(producer(sim, streams[0]))
    for inp, out in zip(streams[:-1], streams[1:]):
        sim.spawn(stage(sim, inp, out))
    proc = sim.spawn(consumer(sim, streams[-1]))
    sim.run_until_process(proc)
    assert received == list(range(n_items))
    # Pipeline fill + streaming: at least n_stages + n_items - 1 ticks.
    assert sim.now >= n_stages + n_items - 1
