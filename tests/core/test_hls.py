"""Unit tests for the mini HLS front end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hls import LoopNest, Pragmas, synthesize


def _simple_loop(n=1000, **kwargs):
    return LoopNest(
        name="vadd",
        trip_count=n,
        ops={"mem_read": 2, "add": 1, "mem_write": 1},
        **kwargs,
    )


def test_iteration_latency_sums_op_chain():
    loop = _simple_loop()
    # 2 reads (2 cy each) + add (1) + write (1) = 6.
    assert loop.iteration_latency() == 6


def test_pipelined_kernel_reaches_ii_1():
    spec = synthesize(_simple_loop(), Pragmas(pipeline=True, pipeline_ii=1))
    assert spec.ii == 1
    assert spec.depth == 6


def test_no_pipeline_degenerates_to_temporal():
    loop = _simple_loop()
    spec = synthesize(loop, Pragmas(pipeline=False))
    assert spec.ii == loop.iteration_latency()
    # Pipelining must improve latency for long loops.
    piped = synthesize(loop, Pragmas(pipeline=True))
    assert piped.latency_cycles(1000) < spec.latency_cycles(1000)


def test_loop_carried_dependence_bounds_ii():
    loop = LoopNest(
        name="accum",
        trip_count=100,
        ops={"mem_read": 1, "add": 1},
        dependence_distance=1,
    )
    spec = synthesize(loop, Pragmas(pipeline=True, pipeline_ii=1))
    # latency 3, distance 1 -> min II 3 even though 1 was requested.
    assert spec.ii == loop.iteration_latency()


def test_dependence_distance_relaxes_min_ii():
    shallow = LoopNest("a", 10, {"mul": 1}, dependence_distance=1)
    relaxed = LoopNest("b", 10, {"mul": 1}, dependence_distance=3)
    assert relaxed.min_ii() == 1
    assert shallow.min_ii() == 3


def test_unroll_multiplies_resources_and_throughput():
    loop = _simple_loop()
    narrow = synthesize(loop, Pragmas(unroll=1))
    wide = synthesize(loop, Pragmas(unroll=8))
    assert wide.unroll == 8
    assert wide.resources.lut > narrow.resources.lut
    assert wide.throughput_items_per_sec() == pytest.approx(
        8 * narrow.throughput_items_per_sec()
    )


def test_sequential_cycles_is_trip_times_latency():
    loop = _simple_loop(n=50)
    assert loop.sequential_cycles() == 50 * loop.iteration_latency()


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown op"):
        LoopNest("bad", 10, {"teleport": 1})


def test_invalid_pragmas_rejected():
    with pytest.raises(ValueError):
        Pragmas(pipeline_ii=0)
    with pytest.raises(ValueError):
        Pragmas(unroll=0)


def test_negative_trip_count_rejected():
    with pytest.raises(ValueError):
        LoopNest("bad", -1)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=100_000),
    ii=st.integers(min_value=1, max_value=8),
    unroll=st.integers(min_value=1, max_value=16),
)
def test_property_pipelining_never_slower_than_sequential(n, ii, unroll):
    """Spatial execution with any pragma set beats temporal execution."""
    loop = _simple_loop(n=n)
    spec = synthesize(loop, Pragmas(pipeline=True, pipeline_ii=ii, unroll=unroll))
    assert spec.latency_cycles(n) <= loop.sequential_cycles() + spec.depth


@settings(max_examples=40, deadline=None)
@given(dep=st.integers(min_value=0, max_value=10))
def test_property_min_ii_monotone_in_dependence(dep):
    loop = LoopNest("l", 10, {"div": 1}, dependence_distance=dep)
    assert 1 <= loop.min_ii() <= loop.iteration_latency()
