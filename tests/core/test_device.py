"""Unit tests for the device catalog and resource vectors."""

import pytest

from repro.core.device import (
    ALVEO_U250,
    ALVEO_U280,
    ALVEO_U55C,
    DEVICE_CATALOG,
    Device,
    ResourceVector,
)


def test_resource_vector_addition_and_scaling():
    a = ResourceVector(lut=10, dsp=1)
    b = ResourceVector(lut=5, bram_36k=2)
    c = a + b
    assert c.lut == 15 and c.dsp == 1 and c.bram_36k == 2
    d = a * 3
    assert d.lut == 30 and d.dsp == 3
    assert (2 * a).lut == 20


def test_negative_resources_rejected():
    with pytest.raises(ValueError):
        ResourceVector(lut=-1)
    with pytest.raises(ValueError):
        ResourceVector() * -1


def test_fits_in_componentwise():
    small = ResourceVector(lut=10, dsp=1)
    big = ResourceVector(lut=100, dsp=10, bram_36k=5)
    assert small.fits_in(big)
    assert not big.fits_in(small)


def test_utilization_handles_zero_budget():
    demand = ResourceVector(lut=10, hbm_channels=2)
    budget = ResourceVector(lut=100)
    util = demand.utilization(budget)
    assert util["lut"] == pytest.approx(0.1)
    assert util["hbm_channels"] == float("inf")
    assert util["dsp"] == 0.0


def test_catalog_devices_are_consistent():
    assert set(DEVICE_CATALOG) == {"u250", "u280", "u55c"}
    assert ALVEO_U250.resources.hbm_channels == 0
    assert ALVEO_U280.resources.hbm_channels == 32
    assert ALVEO_U55C.resources.hbm_channels == 32
    # U55C has twice the HBM capacity of U280.
    assert ALVEO_U55C.hbm_capacity_bytes == 2 * ALVEO_U280.hbm_capacity_bytes
    # Aggregate HBM bandwidth ~460 GB/s on both HBM boards.
    assert ALVEO_U280.hbm_total_bandwidth == pytest.approx(460e9, rel=0.01)


def test_budget_applies_shell_overhead_but_not_to_hbm():
    dev = ALVEO_U280
    assert dev.budget.lut == int(dev.resources.lut * dev.usable_fraction)
    assert dev.budget.hbm_channels == dev.resources.hbm_channels


def test_device_fits_and_report():
    demand = ResourceVector(lut=500_000, dsp=1_000, hbm_channels=16)
    assert ALVEO_U280.fits(demand)
    report = ALVEO_U280.utilization_report(demand)
    assert 0 < report["lut"] < 1
    assert report["hbm_channels"] == pytest.approx(0.5)
    too_big = ResourceVector(lut=2_000_000)
    assert not ALVEO_U280.fits(too_big)


def test_u250_has_no_hbm_but_most_fabric():
    assert ALVEO_U250.hbm_total_bandwidth == 0.0
    assert ALVEO_U250.resources.lut > ALVEO_U280.resources.lut
    assert ALVEO_U250.ddr_total_bandwidth > 0


def test_onchip_sram_sizes_plausible():
    # U280/U55C: 2016 BRAM36 (~8.8 MiB) + 960 URAM (~33.8 MiB).
    sram = ALVEO_U280.onchip_sram_bytes
    assert 40 * 1024 * 1024 < sram < 50 * 1024 * 1024


def test_usable_fraction_validation():
    with pytest.raises(ValueError):
        Device(name="bad", resources=ResourceVector(), usable_fraction=0.0)
    with pytest.raises(ValueError):
        Device(name="bad", resources=ResourceVector(), usable_fraction=1.5)
