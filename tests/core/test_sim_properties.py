"""Property-based tests for the discrete-event engine (repro.core.sim).

Randomised interleavings of spawn/timeout/interrupt/all_of/any_of must
uphold three engine invariants:

* simulated time never decreases while events fire;
* events scheduled for the same timestamp fire in scheduling (FIFO)
  order;
* attaching a tracer never changes event order, timestamps, or process
  results (trace transparency).
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.sim import Interrupt, Simulator, all_of, any_of
from repro.obs import Tracer

# A program spec is (interrupt_at | None, [[worker delays], ...]).
_WORKERS = st.lists(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=5),
    min_size=1,
    max_size=4,
)
_SPEC = st.tuples(
    st.one_of(st.none(), st.integers(min_value=0, max_value=60)),
    _WORKERS,
)


def _run_program(spec, tracer=None):
    """Build and run a randomised program; return (sim, event log)."""
    interrupt_at, workers = spec
    sim = Simulator(tracer=tracer)
    log = []

    def worker(wid, delays):
        try:
            for step, d in enumerate(delays):
                yield sim.timeout(d)
                log.append((sim.now, wid, step))
            return wid * 1000 + sim.now
        except Interrupt as exc:
            log.append((sim.now, wid, "interrupted"))
            return exc.cause

    procs = [
        sim.spawn(worker(i, d), name=f"w{i}") for i, d in enumerate(workers)
    ]

    def joiner():
        values = yield all_of(sim, procs)
        log.append((sim.now, "join", tuple(values)))

    def racer():
        first = yield any_of(sim, procs)
        log.append((sim.now, "race", first.value))

    sim.spawn(joiner(), name="join")
    sim.spawn(racer(), name="race")

    if interrupt_at is not None:

        def assassin():
            yield sim.timeout(interrupt_at)
            target = procs[interrupt_at % len(procs)]
            if target.is_alive:
                target.interrupt(cause=-1)
                log.append((sim.now, "assassin", interrupt_at))

        sim.spawn(assassin(), name="assassin")

    sim.run()
    return sim, log


@given(_SPEC)
@settings(max_examples=25, deadline=None)
def test_time_is_nondecreasing(spec):
    sim, log = _run_program(spec)
    times = [entry[0] for entry in log]
    assert times == sorted(times)
    assert log, "program must make progress"
    assert sim.now >= max(times)


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_fifo_order_at_equal_timestamps(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        ev = sim.event()
        ev.callbacks.append(lambda e, i=i: fired.append(i))
        ev.succeed(delay=d)
    sim.run()
    # stable sort on (when, scheduling index) == required fire order
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))]
    assert fired == expected


@given(_SPEC)
@settings(max_examples=25, deadline=None)
def test_trace_transparency(spec):
    sim_plain, log_plain = _run_program(spec)
    tracer = Tracer(verbose_sim=True)
    sim_traced, log_traced = _run_program(spec, tracer=tracer)
    assert log_traced == log_plain
    assert sim_traced.now == sim_plain.now
    # ... and the tracer did actually observe the run
    assert tracer.registry.snapshot()["sim.events.fired"] > 0


@given(_SPEC)
@settings(max_examples=15, deadline=None)
def test_runs_are_deterministic(spec):
    _, first = _run_program(spec)
    _, second = _run_program(spec)
    assert first == second


# -- interrupt vs fired-event-yield interleavings --------------------------

# A victim program is a list of steps; True = yield an already-fired
# event (the immediate-resume path), False = yield a 1-unit timeout.
_VICTIM_STEPS = st.lists(st.booleans(), min_size=1, max_size=8)
_INTERRUPT_ROUND = st.integers(min_value=0, max_value=10)


@given(_VICTIM_STEPS, _INTERRUPT_ROUND)
@settings(max_examples=60, deadline=None)
def test_interrupt_never_double_steps_a_fired_yield(steps, interrupt_round):
    """Regression property for the stale-resume bug: whatever mix of
    already-fired yields and timeouts the victim executes, an interrupt
    delivered at an arbitrary point in the interleaving must step the
    victim exactly once per resume.  The fired events are drained
    through the heap up front so yielding them takes the
    immediate-resume path, and the assassin advances in lockstep so its
    interrupt can land in the window between a fired-event yield and
    the queued immediate — the interleaving that used to double-step
    the process and corrupt the engine ("event already triggered")."""
    sim = Simulator()
    log = []

    def victim():
        fired = {}
        for i, use_fired in enumerate(steps):
            if use_fired:
                fired[i] = sim.event()
                fired[i].succeed(i)
        yield sim.timeout(1)  # let the pre-succeeded events fire
        interrupted = 0
        for i, use_fired in enumerate(steps):
            try:
                if use_fired:
                    value = yield fired[i]
                    assert value == i
                else:
                    yield sim.timeout(1)
            except Interrupt:
                interrupted += 1
            log.append((sim.now, i))
        return interrupted

    def assassin(target):
        for _ in range(interrupt_round + 1):  # +1 mirrors the warm-up
            yield sim.timeout(1)
        if target.is_alive:
            target.interrupt("now")
            log.append((sim.now, "interrupt"))

    target = sim.spawn(victim(), name="victim")
    sim.spawn(assassin(target), name="assassin")
    sim.run()

    step_hits = [entry[1] for entry in log if entry[1] != "interrupt"]
    assert step_hits == list(range(len(steps))), "each step exactly once"
    times = [entry[0] for entry in log]
    assert times == sorted(times)
    assert target.ok and target.value in (0, 1)
