"""Unit and property tests for Cartesian-product table combining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microrec.cartesian import CartesianPlan, plan_cartesian
from repro.microrec.embedding import EmbeddingTables
from repro.workloads.traces import RecModelSpec, lookup_trace


def _spec(rows=(4, 8, 100, 1000), dim=4):
    return RecModelSpec(table_rows=rows, embedding_dim=dim)


def test_identity_plan_when_budget_too_small():
    spec = _spec()
    plan = plan_cartesian(spec, byte_budget=0)
    assert plan.n_lookups == spec.n_tables
    assert plan.lookups_saved == 0
    assert plan.total_bytes == spec.total_embedding_bytes
    assert plan.capacity_overhead == pytest.approx(1.0)


def test_generous_budget_combines_small_tables():
    spec = _spec()
    plan = plan_cartesian(spec, byte_budget=10 * spec.total_embedding_bytes)
    assert plan.n_lookups < spec.n_tables
    # The two smallest tables fuse first (possibly with further tables).
    fused = next(g for g in plan.groups if 0 in g)
    assert 1 in fused
    assert plan.capacity_overhead > 1.0


def test_max_group_rows_caps_fusion():
    spec = _spec(rows=(1000, 1000, 1000))
    plan = plan_cartesian(spec, byte_budget=1 << 40, max_group_rows=1_000)
    assert plan.n_lookups == 3  # any fusion would exceed 1000 rows


def test_groups_partition_tables():
    spec = _spec()
    plan = plan_cartesian(spec, byte_budget=4 * spec.total_embedding_bytes)
    flat = sorted(t for g in plan.groups for t in g)
    assert flat == list(range(spec.n_tables))
    with pytest.raises(ValueError):
        CartesianPlan(spec=spec, groups=((0, 1), (1, 2, 3)))
    with pytest.raises(ValueError):
        CartesianPlan(spec=spec, groups=((0, 1), (2,)))


def test_combined_spec_row_counts_multiply():
    spec = _spec(rows=(4, 8, 100))
    plan = CartesianPlan(spec=spec, groups=((0, 1), (2,)))
    combined = plan.combined_spec()
    assert combined.table_rows == (32, 100)
    assert plan.combined_dims() == (8, 4)
    assert plan.combined_row_bytes() == (32, 16)
    assert plan.total_bytes == 32 * 32 + 100 * 16


def test_rewrite_trace_mixed_radix():
    spec = _spec(rows=(4, 8, 100))
    plan = CartesianPlan(spec=spec, groups=((0, 1), (2,)))
    trace = np.array([[3, 7, 42], [0, 0, 0]])
    combined = plan.rewrite_trace(trace)
    assert combined.shape == (2, 2)
    assert combined[0, 0] == 3 * 8 + 7
    assert combined[0, 1] == 42
    assert combined[1, 0] == 0
    with pytest.raises(ValueError):
        plan.rewrite_trace(np.zeros((2, 2), dtype=np.int64))


def test_combined_lookup_equals_uncombined():
    """The defining correctness property of the Cartesian rewrite."""
    spec = _spec(rows=(4, 6, 50, 200))
    tables = EmbeddingTables(spec, seed=3)
    plan = plan_cartesian(spec, byte_budget=10 * spec.total_embedding_bytes)
    assert plan.lookups_saved >= 1
    trace = lookup_trace(spec, batch_size=32, seed=4)
    assert np.allclose(plan.lookup(tables, trace), tables.lookup(trace))


def test_materialize_row_contents():
    spec = _spec(rows=(2, 3))
    tables = EmbeddingTables(spec, seed=5)
    plan = CartesianPlan(spec=spec, groups=((0, 1),))
    combined = plan.materialize(tables)[0]
    assert combined.shape == (6, 8)
    # Row (i*3 + j) is [table0[i], table1[j]].
    for i in range(2):
        for j in range(3):
            row = combined[i * 3 + j]
            assert np.array_equal(row[:4], tables.tables[0][i])
            assert np.array_equal(row[4:], tables.tables[1][j])


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        plan_cartesian(_spec(), byte_budget=-1)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(st.integers(min_value=1, max_value=60), min_size=1,
                  max_size=6),
    budget_factor=st.floats(min_value=0.0, max_value=20.0),
)
def test_property_plan_valid_and_lookup_exact(rows, budget_factor):
    spec = RecModelSpec(table_rows=tuple(rows), embedding_dim=2)
    budget = int(budget_factor * spec.total_embedding_bytes)
    plan = plan_cartesian(spec, byte_budget=budget)
    # Partition invariant.
    flat = sorted(t for g in plan.groups for t in g)
    assert flat == list(range(spec.n_tables))
    # Budget respected unless nothing was combined.
    if plan.lookups_saved > 0:
        assert plan.total_bytes <= max(budget, spec.total_embedding_bytes)
    # Functional equivalence on a small trace.
    tables = EmbeddingTables(spec, seed=0)
    trace = lookup_trace(spec, batch_size=5, seed=1)
    assert np.allclose(plan.lookup(tables, trace), tables.lookup(trace))
