"""Tests for the MicroRec accelerator and its CPU baseline."""

import numpy as np
import pytest

from repro.microrec.accelerator import MicroRecAccelerator, MicroRecConfig
from repro.microrec.cartesian import plan_cartesian
from repro.microrec.cpu_baseline import CpuRecommender
from repro.microrec.embedding import EmbeddingTables
from repro.workloads.traces import (
    RecModelSpec,
    lookup_trace,
    production_like_model,
)

_SPEC = production_like_model(n_tables=20, max_rows=200_000, seed=7)
_TABLES = EmbeddingTables(_SPEC, seed=7)
_TRACE = lookup_trace(_SPEC, batch_size=16, seed=8)


def test_config_validation():
    with pytest.raises(ValueError):
        MicroRecConfig(sram_budget_bytes=-1)
    with pytest.raises(ValueError):
        MicroRecConfig(n_hbm_channels=0)
    with pytest.raises(ValueError):
        MicroRecConfig(dnn_dsp_macs=0)
    with pytest.raises(ValueError):
        MicroRecConfig(sram_access_cycles=0)


def test_placement_small_tables_go_to_sram():
    accel = MicroRecAccelerator(_TABLES, seed=1)
    sizes = accel.plan.combined_table_bytes()
    if accel.placement.sram_tables and accel.placement.hbm_tables:
        biggest_sram = max(sizes[i] for i in accel.placement.sram_tables)
        smallest_hbm = min(sizes[i] for i in accel.placement.hbm_tables)
        assert biggest_sram <= smallest_hbm
    assert accel.placement.sram_bytes <= accel.config.sram_budget_bytes


def test_zero_sram_budget_puts_everything_in_hbm():
    config = MicroRecConfig(sram_budget_bytes=0)
    accel = MicroRecAccelerator(_TABLES, config=config, seed=1)
    assert accel.placement.sram_tables == ()
    assert len(accel.placement.hbm_tables) == accel.plan.n_lookups


def test_fpga_and_cpu_logits_identical():
    accel = MicroRecAccelerator(_TABLES, seed=3)
    cpu = CpuRecommender(_TABLES, seed=3)
    a = accel.infer(_TRACE)
    c = cpu.infer(_TRACE)
    assert np.allclose(a.logits, c.logits, rtol=1e-5, atol=1e-5)


def test_cartesian_plan_preserves_logits():
    plan = plan_cartesian(_SPEC, byte_budget=4 * _SPEC.total_embedding_bytes)
    assert plan.lookups_saved >= 1
    plain = MicroRecAccelerator(_TABLES, seed=3)
    combined = MicroRecAccelerator(_TABLES, plan=plan, seed=3)
    assert np.allclose(
        plain.infer(_TRACE).logits, combined.infer(_TRACE).logits,
        rtol=1e-5, atol=1e-5,
    )


def test_cartesian_reduces_hbm_lookups_and_lookup_time():
    config = MicroRecConfig(sram_budget_bytes=0)  # isolate the HBM effect
    plain = MicroRecAccelerator(_TABLES, config=config, seed=1)
    plan = plan_cartesian(_SPEC, byte_budget=4 * _SPEC.total_embedding_bytes)
    combined = MicroRecAccelerator(_TABLES, plan=plan, config=config, seed=1)
    assert combined.lookups_per_inference < plain.lookups_per_inference
    assert combined.hbm_lookups_per_inference <= plain.hbm_lookups_per_inference


def test_fpga_latency_order_of_magnitude_below_cpu():
    """MicroRec's headline claim."""
    accel = MicroRecAccelerator(_TABLES, seed=2)
    cpu = CpuRecommender(_TABLES, seed=2)
    a = accel.infer(_TRACE[:1])
    c = cpu.infer(_TRACE[:1])
    assert a.latency_s < c.latency_s / 5


def test_more_hbm_channels_never_slower():
    config8 = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=8)
    config32 = MicroRecConfig(sram_budget_bytes=0, n_hbm_channels=32)
    narrow = MicroRecAccelerator(_TABLES, config=config8, seed=1)
    wide = MicroRecAccelerator(_TABLES, config=config32, seed=1)
    assert wide.lookup_time_s(32) <= narrow.lookup_time_s(32)


def test_lookup_time_grows_with_batch():
    accel = MicroRecAccelerator(_TABLES, seed=1)
    assert accel.lookup_time_s(64) > accel.lookup_time_s(1)
    with pytest.raises(ValueError):
        accel.lookup_time_s(0)


def test_infer_outcome_consistency():
    accel = MicroRecAccelerator(_TABLES, seed=1)
    out = accel.infer(_TRACE)
    assert out.logits.shape == (16,)
    assert out.batch_time_s >= max(out.lookup_s, out.dnn_s)
    assert out.latency_s > 0
    assert out.qps == pytest.approx(16 / out.batch_time_s)
    with pytest.raises(ValueError):
        accel.infer(_TRACE[:0])


def test_plan_for_wrong_spec_rejected():
    other = RecModelSpec(table_rows=(5, 5), embedding_dim=4)
    plan = plan_cartesian(other, 0)
    with pytest.raises(ValueError):
        MicroRecAccelerator(_TABLES, plan=plan)


def test_cpu_outcome_consistency():
    cpu = CpuRecommender(_TABLES, seed=1)
    out = cpu.infer(_TRACE)
    assert out.logits.shape == (16,)
    assert out.batch_time_s == pytest.approx(out.lookup_s + out.dnn_s)
    assert out.latency_s > 0
    with pytest.raises(ValueError):
        cpu.infer(_TRACE[:0])
