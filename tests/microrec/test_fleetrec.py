"""Tests for the FleetRec hybrid GPU-FPGA cluster."""

import numpy as np
import pytest

from repro.microrec.accelerator import MicroRecAccelerator
from repro.microrec.fleetrec import A100, FleetRecCluster, GpuModel, V100
from repro.workloads.traces import lookup_trace, production_like_model
from repro.microrec.embedding import EmbeddingTables

_SPEC = production_like_model(n_tables=30, max_rows=300_000, seed=41)
_TABLES = EmbeddingTables(_SPEC, seed=41)
_TRACE = lookup_trace(_SPEC, batch_size=128, seed=42)


def test_gpu_model_validation():
    with pytest.raises(ValueError):
        GpuModel(name="bad", flops=0, hbm_bandwidth=1)
    with pytest.raises(ValueError):
        GpuModel(name="bad", flops=1, hbm_bandwidth=1, kernel_launch_s=-1)
    with pytest.raises(ValueError):
        V100.mlp_time_s(100, 100, batch=0)


def test_gpu_mlp_time_regimes():
    small = V100.mlp_time_s(macs=1_000, weight_bytes=1_000, batch=1)
    assert small == pytest.approx(V100.kernel_launch_s, rel=0.01)
    big_compute = V100.mlp_time_s(macs=10 ** 9, weight_bytes=1_000,
                                  batch=1000)
    assert big_compute > 1000 * 10 ** 9 / V100.flops * 0.99
    assert A100.mlp_time_s(10 ** 9, 10 ** 9, 100) < V100.mlp_time_s(
        10 ** 9, 10 ** 9, 100
    )


def test_fleetrec_logits_match_single_fpga():
    fleet = FleetRecCluster(_TABLES, seed=3)
    single = MicroRecAccelerator(_TABLES, seed=3)
    f = fleet.infer(_TRACE)
    s = single.infer(_TRACE)
    assert np.allclose(f.logits, s.logits, rtol=1e-5, atol=1e-5)


def test_outcome_consistency():
    fleet = FleetRecCluster(_TABLES)
    out = fleet.infer(_TRACE)
    assert out.logits.shape == (128,)
    assert out.batch_time_s >= max(out.lookup_s, out.network_s, out.dnn_s)
    assert out.latency_s > 0
    assert out.qps == pytest.approx(128 / out.batch_time_s)
    with pytest.raises(ValueError):
        fleet.infer(_TRACE[:0])


def test_more_gpu_nodes_shrink_dnn_stage():
    one = FleetRecCluster(_TABLES, n_gpu_nodes=1).infer(_TRACE)
    four = FleetRecCluster(_TABLES, n_gpu_nodes=4).infer(_TRACE)
    assert four.dnn_s <= one.dnn_s


def test_more_lookup_nodes_shrink_lookup_stage():
    one = FleetRecCluster(_TABLES, n_lookup_nodes=1).infer(_TRACE)
    four = FleetRecCluster(_TABLES, n_lookup_nodes=4).infer(_TRACE)
    assert four.lookup_s <= one.lookup_s


def test_network_stage_positive_and_scales_with_batch():
    fleet = FleetRecCluster(_TABLES)
    small = fleet.infer(_TRACE[:1])
    large = fleet.infer(_TRACE)
    assert 0 < small.network_s <= large.network_s


def test_validation():
    with pytest.raises(ValueError):
        FleetRecCluster(_TABLES, n_lookup_nodes=0)
    with pytest.raises(ValueError):
        FleetRecCluster(_TABLES, n_gpu_nodes=0)
