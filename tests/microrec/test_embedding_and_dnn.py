"""Unit tests for embedding tables and the MLP head."""

import numpy as np
import pytest

from repro.microrec.dnn import Mlp, fpga_mlp_latency_s
from repro.microrec.embedding import EmbeddingTables
from repro.workloads.traces import RecModelSpec, lookup_trace


def _spec():
    return RecModelSpec(table_rows=(10, 100, 1000), embedding_dim=4,
                        mlp_layers=(32, 16))


def test_tables_shapes_and_bytes():
    spec = _spec()
    tables = EmbeddingTables(spec, seed=1)
    assert len(tables.tables) == 3
    assert tables.tables[2].shape == (1000, 4)
    assert tables.table_nbytes(0) == 10 * 4 * 4
    assert tables.total_nbytes == (10 + 100 + 1000) * 16


def test_lookup_gathers_and_concatenates():
    spec = _spec()
    tables = EmbeddingTables(spec, seed=1)
    trace = np.array([[1, 2, 3], [0, 0, 0]])
    out = tables.lookup(trace)
    assert out.shape == (2, 12)
    assert np.array_equal(out[0, :4], tables.tables[0][1])
    assert np.array_equal(out[0, 4:8], tables.tables[1][2])
    assert np.array_equal(out[1, 8:], tables.tables[2][0])


def test_lookup_validation():
    tables = EmbeddingTables(_spec(), seed=1)
    with pytest.raises(ValueError):
        tables.lookup(np.zeros((2, 5), dtype=np.int64))
    with pytest.raises(IndexError):
        tables.lookup(np.array([[0, 0, 5000]]))
    with pytest.raises(IndexError):
        tables.lookup(np.array([[-1, 0, 0]]))


def test_lookup_deterministic_per_seed():
    a = EmbeddingTables(_spec(), seed=4)
    b = EmbeddingTables(_spec(), seed=4)
    trace = lookup_trace(_spec(), 8, seed=2)
    assert np.array_equal(a.lookup(trace), b.lookup(trace))


def test_mlp_shapes_and_determinism():
    mlp = Mlp(12, (32, 16), seed=0)
    x = np.random.default_rng(0).random((5, 12), dtype=np.float32)
    out = mlp.forward(x)
    assert out.shape == (5,)
    assert np.array_equal(out, Mlp(12, (32, 16), seed=0).forward(x))
    assert mlp.n_macs == 12 * 32 + 32 * 16 + 16
    assert mlp.weight_nbytes == mlp.n_macs * 4


def test_mlp_relu_nonlinearity():
    mlp = Mlp(4, (8,), seed=1)
    x = np.random.default_rng(1).random((10, 4), dtype=np.float32)
    # Doubling the input must not exactly double the output (ReLU kinks
    # + bias make the map non-linear in general); a linear map would.
    y1, y2 = mlp.forward(x), mlp.forward(2 * x)
    assert not np.allclose(y2, 2 * y1)


def test_mlp_validation():
    with pytest.raises(ValueError):
        Mlp(0, (4,))
    with pytest.raises(ValueError):
        Mlp(4, (0,))
    mlp = Mlp(4, (8,))
    with pytest.raises(ValueError):
        mlp.forward(np.zeros((2, 5), dtype=np.float32))


def test_fpga_mlp_latency_scales():
    mlp = Mlp(512, (1024, 512, 256), seed=0)
    fast = fpga_mlp_latency_s(mlp, n_dsp_macs=4096)
    slow = fpga_mlp_latency_s(mlp, n_dsp_macs=256)
    assert slow > fast
    # Microsecond scale for a production-sized head.
    assert 1e-7 < fast < 1e-4
    with pytest.raises(ValueError):
        fpga_mlp_latency_s(mlp, n_dsp_macs=0)
