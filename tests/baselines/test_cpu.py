"""Unit tests for the roofline CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cpu import CpuModel, laptop, xeon_server


def test_simd_lanes():
    cpu = xeon_server()
    assert cpu.simd_lanes(4) == 8  # fp32 in AVX2
    assert cpu.simd_lanes(1) == 32
    assert cpu.simd_lanes(64) == 1
    with pytest.raises(ValueError):
        cpu.simd_lanes(0)


def test_compute_time_scales_inversely_with_parallelism():
    cpu = xeon_server()
    serial = cpu.compute_time_s(1_000_000, parallel=False)
    parallel = cpu.compute_time_s(1_000_000, parallel=True)
    assert serial == pytest.approx(parallel * cpu.cores)


def test_stream_time_is_bandwidth_bound():
    cpu = xeon_server()
    assert cpu.stream_time_s(160_000_000_000) == pytest.approx(1.0)


def test_scan_roofline_switches_regimes():
    cpu = xeon_server()
    n = 1 << 30
    light = cpu.scan_time_s(n, ops_per_byte=0.01)
    heavy = cpu.scan_time_s(n, ops_per_byte=100.0)
    assert light == pytest.approx(cpu.stream_time_s(n))
    assert heavy > light
    assert heavy == pytest.approx(cpu.compute_time_s(100 * n))


def test_random_access_llc_vs_dram():
    cpu = xeon_server()
    hot = cpu.random_access_time_s(10_000, 64, working_set_bytes=1 << 20)
    cold = cpu.random_access_time_s(10_000, 64, working_set_bytes=1 << 34)
    assert cold > hot


def test_random_access_wide_reads_cost_more_lines():
    cpu = xeon_server()
    narrow = cpu.random_access_time_s(1000, 64, 1 << 34)
    wide = cpu.random_access_time_s(1000, 256, 1 << 34)
    assert wide == pytest.approx(4 * narrow, rel=0.3)


def test_zero_work_costs_nothing():
    cpu = xeon_server()
    assert cpu.compute_time_s(0) == 0.0
    assert cpu.stream_time_s(0) == 0.0
    assert cpu.random_access_time_s(0, 64, 1) == 0.0
    assert cpu.scan_time_s(0) == 0.0


def test_gemv_small_weights_compute_bound():
    cpu = xeon_server()
    t = cpu.gemv_time_s(256, 256)
    assert t == pytest.approx(cpu.compute_time_s(256 * 256, parallel=False))


def test_gemv_large_weights_memory_bound():
    cpu = xeon_server()
    rows = cols = 8192  # 256 MiB of fp32 weights >> LLC
    t = cpu.gemv_time_s(rows, cols, parallel=False)
    assert t >= cpu.stream_time_s(rows * cols * 4, parallel=False)


def test_laptop_slower_than_server():
    big, small = xeon_server(), laptop()
    assert small.stream_time_s(1 << 30) > big.stream_time_s(1 << 30)
    assert small.compute_time_s(1 << 30) > big.compute_time_s(1 << 30)


def test_invalid_model_rejected():
    with pytest.raises(ValueError):
        CpuModel(name="bad", cores=0)
    with pytest.raises(ValueError):
        CpuModel(name="bad", dram_bandwidth=0)


@settings(max_examples=40, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=1 << 32),
    ops=st.floats(min_value=0.0, max_value=10.0),
)
def test_property_scan_never_beats_pure_bandwidth(nbytes, ops):
    cpu = xeon_server()
    assert cpu.scan_time_s(nbytes, ops_per_byte=ops) >= cpu.stream_time_s(nbytes)
