"""Unit and integration tests for the Farview use case."""

import numpy as np
import pytest

from repro.farview.client import FarviewClient
from repro.farview.offload import offload_query
from repro.farview.server import FarviewServer
from repro.network.protocol import fpga_rdma
from repro.relational.engine import execute
from repro.relational.expressions import col
from repro.relational.operators import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    GroupByAggregate,
    Project,
    QueryPlan,
    Transform,
)
from repro.relational.table import Table
from repro.workloads.tables import grouped_table, uniform_table


def _server_with_table(n_rows=10_000, seed=1):
    server = FarviewServer()
    table = Table(uniform_table(n_rows, n_payload_cols=4, seed=seed))
    server.store("t", table)
    return server, table


def _selective_plan(selectivity=0.05):
    return QueryPlan((
        Filter(col("key") < int(selectivity * 1_000_000)),
        Project(("key", "val0")),
    ))


# -- server basics ----------------------------------------------------------


def test_store_and_read_accounting():
    server, table = _server_with_table()
    assert server.used_bytes == table.nbytes
    read = server.read("t")
    assert read.scan_bytes == table.nbytes
    server.drop("t")
    assert server.used_bytes == 0
    with pytest.raises(KeyError):
        server.table("t")
    with pytest.raises(KeyError):
        server.drop("t")


def test_store_duplicate_and_capacity():
    server, table = _server_with_table()
    with pytest.raises(ValueError):
        server.store("t", table)
    tiny = FarviewServer(memory_capacity_bytes=10)
    with pytest.raises(MemoryError):
        tiny.store("big", table)


def test_read_column_pruning_moves_less():
    server, table = _server_with_table()
    full = server.read("t")
    pruned = server.read("t", columns=("key",))
    assert pruned.scan_bytes < full.scan_bytes
    assert pruned.processing_s < full.processing_s


# -- offload execution --------------------------------------------------------


def test_offload_result_matches_cpu_engine():
    server, table = _server_with_table()
    plan = _selective_plan()
    execution = server.execute(plan, "t")
    assert execution.result.equals(execute(plan, table))


def test_offload_scan_is_column_pruned():
    server, table = _server_with_table()
    plan = _selective_plan()
    execution = server.execute(plan, "t")
    touched = plan.columns_needed(table.column_names)
    expected = sum(table[c].nbytes for c in touched)
    assert execution.scan_bytes == expected
    assert execution.scan_bytes < table.nbytes


def test_offload_result_bytes_shrink_with_selectivity():
    server, _ = _server_with_table(50_000)
    tight = server.execute(_selective_plan(0.01), "t")
    loose = server.execute(_selective_plan(0.5), "t")
    assert tight.result_bytes < loose.result_bytes


def test_offload_aggregation_returns_single_row():
    server, table = _server_with_table()
    plan = QueryPlan((
        Filter(col("key") < 500_000),
        Aggregate((AggSpec(AggFunc.SUM, "val0"), AggSpec(AggFunc.COUNT, "key", alias="n"))),
    ))
    execution = server.execute(plan, "t")
    want = execute(plan, table)
    assert execution.result.n_rows == 1
    assert execution.result["sum_val0"][0] == pytest.approx(want["sum_val0"][0])
    # Result payload is tiny regardless of input size.
    assert execution.result_bytes < 100


def test_offload_pipeline_sustains_network_line_rate():
    """The node's datapath never becomes slower than the 100G wire: an
    offloaded query cannot lose throughput vs. just shipping the data."""
    server, table = _server_with_table()
    plan = _selective_plan()
    execution = server.execute(plan, "t")
    touched = plan.columns_needed(table.column_names)
    row_nbytes = table.project(touched).schema.row_nbytes
    source_bytes_per_sec = execution.report.source_rate * row_nbytes
    line_rate = server.protocol.link.bandwidth_bytes_per_sec
    assert source_bytes_per_sec >= line_rate


def test_offload_groupby_matches_engine():
    server = FarviewServer()
    table = Table(grouped_table(20_000, n_groups=64, seed=2))
    server.store("g", table)
    plan = QueryPlan((
        GroupByAggregate("group", (AggSpec(AggFunc.SUM, "value"),)),
    ))
    execution = server.execute(plan, "g")
    want = execute(plan, table)
    assert np.allclose(execution.result["sum_value"], want["sum_value"])


def test_pipeline_resource_check():
    server, _ = _server_with_table()
    demand = server.pipeline_resources(_selective_plan(), "t")
    assert demand.lut > 0
    assert server.device.fits(demand)


def test_offload_invalid_memory_parameters():
    table = Table(uniform_table(10))
    with pytest.raises(ValueError):
        offload_query(QueryPlan(), table, memory_bandwidth_bytes_per_sec=0,
                      memory_latency_s=0, protocol=fpga_rdma())
    with pytest.raises(ValueError):
        offload_query(QueryPlan(), table, memory_bandwidth_bytes_per_sec=1e9,
                      memory_latency_s=-1, protocol=fpga_rdma())


# -- client comparisons --------------------------------------------------------


def test_offload_and_fetch_agree_functionally():
    server, _ = _server_with_table(20_000)
    client = FarviewClient(server)
    plan = _selective_plan(0.1)
    off = client.query_offload(plan, "t")
    fetch = client.query_fetch(plan, "t")
    assert off.result.equals(fetch.result)
    assert off.mode == "offload"
    assert fetch.mode == "fetch-columns"


def test_offload_moves_fewer_bytes_at_low_selectivity():
    server, _ = _server_with_table(100_000)
    client = FarviewClient(server)
    plan = _selective_plan(0.01)
    off = client.query_offload(plan, "t")
    fetch = client.query_fetch(plan, "t")
    assert off.bytes_over_network < fetch.bytes_over_network / 10


def test_offload_faster_at_low_selectivity():
    server, _ = _server_with_table(1_000_000)
    client = FarviewClient(server)
    plan = QueryPlan((
        Filter(col("key") < 10_000),  # 1% selectivity
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    off = client.query_offload(plan, "t")
    fetch = client.query_fetch(plan, "t")
    assert off.latency_s < fetch.latency_s


def test_fetch_table_granularity_moves_everything():
    server, table = _server_with_table(50_000)
    client = FarviewClient(server)
    plan = _selective_plan(0.1)
    cols = client.query_fetch(plan, "t", fetch_granularity="columns")
    blocks = client.query_fetch(plan, "t", fetch_granularity="table")
    assert blocks.bytes_over_network > cols.bytes_over_network
    assert blocks.result.equals(cols.result)
    with pytest.raises(ValueError):
        client.query_fetch(plan, "t", fetch_granularity="pages")


def test_breakdowns_are_populated():
    server, _ = _server_with_table()
    client = FarviewClient(server)
    off = client.query_offload(_selective_plan(), "t")
    assert {"request_s", "node_processing_s"} <= set(off.breakdown)
    fetch = client.query_fetch(_selective_plan(), "t")
    assert {"transfer_s", "cpu_s"} <= set(fetch.breakdown)
    assert fetch.latency_s >= fetch.breakdown["transfer_s"]


def test_transform_offload_supported():
    server, table = _server_with_table()
    plan = QueryPlan((
        Transform("decrypt", ops_per_byte=2.0),
        Filter(col("key") < 100_000),
    ))
    execution = server.execute(plan, "t")
    assert execution.result.equals(execute(plan, table))
