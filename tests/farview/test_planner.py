"""Tests for the cost-based offload planner."""

import pytest

from repro.farview.client import FarviewClient
from repro.farview.planner import OffloadPlanner
from repro.farview.server import FarviewServer
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    Project,
    QueryPlan,
    Table,
    col,
    execute,
)
from repro.workloads import uniform_table

_KEY_MAX = 1_000_000


def _planner(n_rows=500_000):
    server = FarviewServer()
    table = Table(uniform_table(n_rows, n_payload_cols=4, key_max=_KEY_MAX))
    server.store("t", table)
    return OffloadPlanner(FarviewClient(server)), table


def _agg_plan(selectivity):
    return QueryPlan((
        Filter(col("key") < int(selectivity * _KEY_MAX)),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))


def test_selectivity_estimate_close_to_truth():
    planner, table = _planner()
    for s in (0.05, 0.5, 0.95):
        plan = _agg_plan(s)
        estimate = planner.estimate_selectivity(plan, "t")
        assert estimate == pytest.approx(s, abs=0.08)


def test_planner_chooses_offload_for_selective_aggregate():
    planner, table = _planner()
    plan = _agg_plan(0.01)
    out = planner.query(plan, "t")
    assert out.chose == "offload"
    assert out.predicted_offload_s < out.predicted_fetch_s
    assert out.outcome.result.equals(execute(plan, table))


def test_planner_result_always_correct():
    """Whatever the decision, the answer is the engine's answer."""
    planner, table = _planner(100_000)
    for s in (0.01, 0.5, 1.0):
        plan = QueryPlan((
            Filter(col("key") < int(s * _KEY_MAX)),
            Project(("key", "val0")),
        ))
        out = planner.query(plan, "t")
        assert out.outcome.result.equals(execute(plan, table))
        assert out.chose in ("offload", "fetch")


def test_predictions_track_measured_ordering():
    """Away from the crossover, the cheaper prediction matches the
    cheaper measured mode."""
    planner, _ = _planner()
    client = planner.client
    plan = _agg_plan(0.01)
    out = planner.query(plan, "t")
    measured_off = client.query_offload(plan, "t").latency_s
    measured_fetch = client.query_fetch(plan, "t").latency_s
    predicted_winner = (
        "offload" if out.predicted_offload_s < out.predicted_fetch_s
        else "fetch"
    )
    measured_winner = (
        "offload" if measured_off < measured_fetch else "fetch"
    )
    assert predicted_winner == measured_winner


def test_prediction_magnitudes_reasonable():
    """Predictions land within ~3x of measured latencies."""
    planner, _ = _planner()
    plan = _agg_plan(0.1)
    out = planner.query(plan, "t")
    measured_off = planner.client.query_offload(plan, "t").latency_s
    measured_fetch = planner.client.query_fetch(plan, "t").latency_s
    assert out.predicted_offload_s == pytest.approx(measured_off, rel=2.0)
    assert out.predicted_fetch_s == pytest.approx(measured_fetch, rel=2.0)


def test_validation():
    planner, _ = _planner(1000)
    with pytest.raises(ValueError):
        OffloadPlanner(planner.client, sample_rows=0)
