"""Tests for the multi-client Farview event simulation."""

import pytest

from repro.farview.concurrency import simulate_clients
from repro.farview.server import FarviewServer
from repro.relational import (
    AggFunc,
    AggSpec,
    Aggregate,
    Filter,
    QueryPlan,
    Table,
    col,
)
from repro.workloads import uniform_table


def _setup(n_rows=200_000):
    server = FarviewServer()
    server.store("t", Table(uniform_table(n_rows, n_payload_cols=2)))
    plan = QueryPlan((
        Filter(col("key") < 10_000),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    return server, plan


def test_validation():
    server, plan = _setup()
    with pytest.raises(ValueError):
        simulate_clients(server, plan, "t", n_clients=0)
    with pytest.raises(ValueError):
        simulate_clients(server, plan, "t", 1, queries_per_client=0)
    with pytest.raises(ValueError):
        simulate_clients(server, plan, "t", 1, mode="teleport")


def test_single_client_sane():
    server, plan = _setup()
    out = simulate_clients(server, plan, "t", n_clients=1)
    assert out.queries_total == 4
    assert out.makespan_s > 0
    assert out.mean_latency_s > 0
    assert 0 <= out.memory_busy_fraction <= 1
    assert 0 <= out.network_busy_fraction <= 1


def test_offload_aggregate_qps_scales_before_fetch():
    """More tenants fit on one node when only results cross the wire."""
    server, plan = _setup()
    n = 8
    off = simulate_clients(server, plan, "t", n, mode="offload")
    fetch = simulate_clients(server, plan, "t", n, mode="fetch")
    assert off.aggregate_qps > fetch.aggregate_qps
    # Fetch saturates the network; offload does not.
    assert fetch.network_busy_fraction > 0.9
    assert off.network_busy_fraction < 0.1


def test_offload_scaling_bounded_by_memory_scan():
    """Back-to-back clients saturate the shared DRAM scan; aggregate
    QPS stays flat (no collapse) as tenants pile on."""
    server, plan = _setup()
    qps = [
        simulate_clients(server, plan, "t", n, mode="offload").aggregate_qps
        for n in (1, 4, 16)
    ]
    assert qps[2] <= 16 * qps[0] * 1.01  # bounded by the shared scan
    assert min(qps) > 0.9 * max(qps)     # and it does not degrade


def test_fetch_latency_higher_under_equal_load():
    """At the same tenant count, fetch queries queue on the saturated
    wire and see several-fold higher latency than offloaded ones."""
    server, plan = _setup()
    off_8 = simulate_clients(server, plan, "t", 8, mode="offload")
    fetch_8 = simulate_clients(server, plan, "t", 8, mode="fetch")
    assert fetch_8.mean_latency_s > 3 * off_8.mean_latency_s


def test_port_admission_serialises_contending_scans():
    """The shared DRAM port is FIFO: N clients' scans serialise, so the
    makespan is N scans end-to-end, and per-query latency grows with
    the queue ahead of it rather than all queries finishing together."""
    server, plan = _setup()
    solo = simulate_clients(server, plan, "t", 1, queries_per_client=1)
    contended = simulate_clients(server, plan, "t", 8, queries_per_client=1)
    assert contended.queries_total == 8
    # All 8 scans go through one port: the makespan covers ~8 scans.
    assert contended.makespan_s > 6 * solo.makespan_s
    # The mean waits out half the queue: well above solo latency...
    assert contended.mean_latency_s > 3 * solo.mean_latency_s
    # ...and the slowest query (== makespan, clients start together)
    # is about twice the mean of a uniformly draining FIFO queue.
    assert contended.makespan_s < 3 * contended.mean_latency_s


def test_queries_per_client_scales_makespan_not_latency():
    """Back-to-back queries from one client pipeline through the empty
    port: 4x the queries means ~4x the makespan at ~equal per-query
    latency (no self-contention)."""
    server, plan = _setup()
    one = simulate_clients(server, plan, "t", 1, queries_per_client=1)
    four = simulate_clients(server, plan, "t", 1, queries_per_client=4)
    assert four.queries_total == 4
    assert four.makespan_s == pytest.approx(4 * one.makespan_s, rel=0.05)
    assert four.mean_latency_s == pytest.approx(one.mean_latency_s,
                                                rel=0.05)


def test_aggregate_qps_is_makespan_accounting_identity():
    server, plan = _setup()
    out = simulate_clients(server, plan, "t", 4, queries_per_client=3)
    assert out.queries_total == 12
    assert out.aggregate_qps == pytest.approx(
        out.queries_total / out.makespan_s
    )


def test_busy_fractions_reflect_the_contended_resource():
    """Offload at high tenancy pins the DRAM scan near saturation while
    the wire idles; fetch mode inverts the picture."""
    server, plan = _setup()
    off = simulate_clients(server, plan, "t", 16, mode="offload")
    fetch = simulate_clients(server, plan, "t", 16, mode="fetch")
    assert off.memory_busy_fraction > 0.9
    assert off.memory_busy_fraction > off.network_busy_fraction
    assert fetch.network_busy_fraction > 0.9
    assert fetch.network_busy_fraction > fetch.memory_busy_fraction


def test_deterministic_replay():
    server, plan = _setup()
    a = simulate_clients(server, plan, "t", 8, mode="offload")
    b = simulate_clients(server, plan, "t", 8, mode="offload")
    assert a == b
