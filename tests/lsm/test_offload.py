"""Tests for the compaction offload study."""

import pytest

from repro.baselines import xeon_server
from repro.lsm.offload import (
    CompactionExecutor,
    cpu_compaction_bandwidth,
    fpga_compaction_bandwidth,
    run_offload_study,
)


def _cpu_executor(cores=8):
    cpu = xeon_server()
    return CompactionExecutor(
        name=f"cpu-{cores}t",
        bandwidth_bytes_per_sec=cpu_compaction_bandwidth(cpu, cores),
        foreground_cores_lost=cores,
    )


def _fpga_executor(trees=2):
    return CompactionExecutor(
        name=f"fpga-{trees}tree",
        bandwidth_bytes_per_sec=fpga_compaction_bandwidth(trees),
        foreground_cores_lost=0,
    )


def test_bandwidth_models():
    cpu = xeon_server()
    assert cpu_compaction_bandwidth(cpu, 0) == 0.0
    assert cpu_compaction_bandwidth(cpu, 8) > cpu_compaction_bandwidth(cpu, 2)
    assert fpga_compaction_bandwidth(4) == 2 * fpga_compaction_bandwidth(2)
    with pytest.raises(ValueError):
        cpu_compaction_bandwidth(cpu, -1)
    with pytest.raises(ValueError):
        fpga_compaction_bandwidth(0)


def test_executor_validation():
    with pytest.raises(ValueError):
        CompactionExecutor("bad", 0.0, 0)
    with pytest.raises(ValueError):
        CompactionExecutor("bad", 1.0, -1)


def test_offload_beats_cpu_compaction():
    """The X-Engine/FAST'20 claim: offloaded compaction sustains higher
    write throughput than any CPU core split."""
    n = 50_000_000
    wa = 4.0
    fpga_result = run_offload_study(n, wa, _fpga_executor(trees=2))
    for cores in (4, 8, 16):
        cpu_result = run_offload_study(n, wa, _cpu_executor(cores=cores))
        assert fpga_result.sustained_writes_per_sec \
            > cpu_result.sustained_writes_per_sec, f"cores={cores}"


def test_stalls_appear_under_high_write_amplification():
    few_cores = _cpu_executor(cores=2)
    calm = run_offload_study(20_000_000, 2.0, few_cores)
    stormy = run_offload_study(20_000_000, 30.0, few_cores)
    assert stormy.stall_time_s > calm.stall_time_s
    assert stormy.sustained_writes_per_sec < calm.sustained_writes_per_sec


def test_more_compaction_cores_trade_foreground_for_drain():
    """Dedicating more cores drains faster (fewer stalls) but slows
    ingest: the no-free-lunch the FPGA escapes."""
    n, wa = 30_000_000, 4.0
    light = run_offload_study(n, wa, _cpu_executor(cores=4))
    heavy = run_offload_study(n, wa, _cpu_executor(cores=16))
    assert heavy.stall_fraction <= light.stall_fraction
    fpga = run_offload_study(n, wa, _fpga_executor())
    assert fpga.sustained_writes_per_sec > max(
        light.sustained_writes_per_sec, heavy.sustained_writes_per_sec
    )


def test_zero_writes_and_validation():
    result = run_offload_study(0, 4.0, _fpga_executor())
    assert result.total_time_s == 0.0
    assert result.stall_fraction == 0.0
    with pytest.raises(ValueError):
        run_offload_study(-1, 4.0, _fpga_executor())
    with pytest.raises(ValueError):
        run_offload_study(10, -1.0, _fpga_executor())
