"""Unit and property tests for the LSM store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.store import LsmStore, SortedRun, merge_runs


def _store(**kwargs):
    params = dict(memtable_limit=16, level0_limit=2, fanout=4)
    params.update(kwargs)
    return LsmStore(**params)


def test_put_get_roundtrip():
    store = _store()
    for i in range(100):
        store.put(i, i * 10)
    for i in range(100):
        assert store.get(i) == i * 10
    assert store.get(1000) is None


def test_overwrite_latest_wins():
    store = _store(memtable_limit=8)
    for round_ in range(5):
        for key in range(20):
            store.put(key, round_ * 100 + key)
    for key in range(20):
        assert store.get(key) == 400 + key


def test_delete_hides_key_across_flushes():
    store = _store(memtable_limit=4)
    for i in range(10):
        store.put(i, i)
    store.flush()
    store.delete(3)
    store.flush()
    assert store.get(3) is None
    assert store.get(2) == 2
    assert 3 not in dict(store.items())


def test_items_sorted_and_live_only():
    store = _store(memtable_limit=8)
    rng = np.random.default_rng(1)
    keys = rng.permutation(200)[:50]
    for key in keys:
        store.put(int(key), int(key) + 1)
    store.delete(int(keys[0]))
    items = store.items()
    got_keys = [k for k, _ in items]
    assert got_keys == sorted(got_keys)
    assert int(keys[0]) not in got_keys
    assert store.n_live_keys == len(items)


def test_flush_creates_runs_and_compaction_merges_them():
    store = _store(memtable_limit=4, level0_limit=2)
    for i in range(64):
        store.put(i, i)
    store.flush()
    assert store.bytes_flushed > 0
    assert store.compactions, "level-0 limit must trigger compactions"
    assert store.write_amplification > 0
    # Everything still readable after compactions.
    for i in range(64):
        assert store.get(i) == i


def test_compaction_drops_tombstones_at_last_level():
    store = _store(memtable_limit=4, level0_limit=1)
    for i in range(16):
        store.put(i, i)
    for i in range(16):
        store.delete(i)
    store.flush()
    # Force enough compaction that deletions reach the bottom.
    for _ in range(6):
        store._compact_level(0)
    total_entries = sum(
        run.keys.size for level in store.levels for run in level
    )
    assert store.n_live_keys == 0
    assert total_entries < 16  # tombstones reclaimed


def test_tombstone_value_rejected():
    store = _store()
    with pytest.raises(ValueError):
        store.put(1, np.iinfo(np.int64).min)


def test_constructor_validation():
    with pytest.raises(ValueError):
        LsmStore(memtable_limit=0)
    with pytest.raises(ValueError):
        LsmStore(level0_limit=0)
    with pytest.raises(ValueError):
        LsmStore(fanout=1)


def test_sorted_run_validation():
    with pytest.raises(ValueError):
        SortedRun(
            keys=np.array([2, 1]), values=np.array([0, 0]), sequence=1
        )
    with pytest.raises(ValueError):
        SortedRun(keys=np.array([1]), values=np.array([1, 2]), sequence=1)


def test_merge_runs_newest_wins():
    old = SortedRun(
        keys=np.array([1, 2, 3]), values=np.array([10, 20, 30]), sequence=1
    )
    new = SortedRun(
        keys=np.array([2, 4]), values=np.array([99, 40]), sequence=2
    )
    merged = merge_runs([old, new], drop_tombstones=False, sequence=3)
    assert merged.get(2) == 99
    assert merged.get(1) == 10
    assert merged.get(4) == 40
    assert merged.keys.size == 4
    with pytest.raises(ValueError):
        merge_runs([], drop_tombstones=False, sequence=1)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=-1000, max_value=1000),
        ),
        max_size=200,
    )
)
def test_property_store_matches_dict_model(ops):
    """The LSM store behaves exactly like a dict, whatever the
    flush/compaction schedule."""
    store = LsmStore(memtable_limit=7, level0_limit=2, fanout=2)
    model: dict[int, int] = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    for key in range(31):
        assert store.get(key) == model.get(key)
    assert store.items() == sorted(model.items())
