"""The serving loop end to end: knee, determinism, accounting, wiring."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    ClosedLoopConfig,
    OpenLoopConfig,
    ServiceConfig,
    SyntheticBackend,
    capacity_qps,
    simulate_service,
)


def _service(backend, **kw):
    base = dict(
        batch=BatchPolicy(max_batch=backend.max_batch,
                          max_wait_ps=2_000_000),
        admission=AdmissionPolicy(max_queue=8 * backend.max_batch),
        replicas=2,
    )
    base.update(kw)
    return ServiceConfig(**base)


def _traffic(backend, load, n_requests=2_000, **kw):
    base = dict(
        offered_qps=load * capacity_qps(backend, 2),
        n_requests=n_requests,
        slo_ps=20_000_000,
    )
    base.update(kw)
    return OpenLoopConfig(**base)


def test_accounting_conserves_every_request():
    be = SyntheticBackend()
    report = simulate_service(be, _traffic(be, 1.2), _service(be), seed=1)
    assert report.offered == 2_000
    assert report.completed + report.shed + report.failed == report.offered
    assert report.admitted + report.shed == report.offered
    assert report.failed == 0
    assert sum(report.shed_by_reason.values()) == report.shed


def test_latency_knee_and_shedding_across_load():
    be = SyntheticBackend()
    reports = [
        simulate_service(be, _traffic(be, load), _service(be), seed=7)
        for load in (0.4, 0.8, 1.5)
    ]
    p99 = [r.p99_us for r in reports]
    assert p99[2] > 1.5 * p99[0], "p99 must inflect past saturation"
    assert reports[0].shed == 0, "no shedding while underloaded"
    assert reports[2].shed > 0, "overload must shed"
    # Goodput saturates near capacity instead of collapsing.
    assert reports[2].goodput_qps > 0.8 * capacity_qps(be, 2)


def test_reports_are_deterministic_per_seed():
    be = SyntheticBackend()
    cfg = _service(be)
    traffic = _traffic(be, 1.3, burst_factor=3.0)
    a = simulate_service(be, traffic, cfg, seed=42)
    b = simulate_service(be, traffic, cfg, seed=42)
    assert a == b
    c = simulate_service(be, traffic, cfg, seed=43)
    assert a != c


def test_larger_max_wait_grows_batches():
    be = SyntheticBackend(max_batch=16)
    traffic = _traffic(be, 0.5)
    eager = simulate_service(
        be, traffic, _service(be, batch=BatchPolicy(16, 0)), seed=3
    )
    patient = simulate_service(
        be, traffic, _service(be, batch=BatchPolicy(16, 5_000_000)), seed=3
    )
    assert patient.mean_batch > eager.mean_batch
    assert patient.batches < eager.batches


def test_closed_loop_self_limits_instead_of_shedding():
    be = SyntheticBackend()
    traffic = ClosedLoopConfig(
        n_clients=8, requests_per_client=50,
        think_ps=500_000, slo_ps=50_000_000,
    )
    report = simulate_service(
        be, traffic, _service(be, replicas=1), seed=5
    )
    assert report.offered == 400
    assert report.completed == 400
    assert report.shed == 0, "closed-loop clients wait; nothing queues deep"
    assert report.in_slo == 400
    assert report.p99_us > 0


def test_single_request_flushes_on_close_without_batch_wait():
    be = SyntheticBackend(service_ps=1_000_000, per_item_ps=100_000,
                          max_batch=8)
    traffic = OpenLoopConfig(offered_qps=1.0, n_requests=1,
                             slo_ps=10_000_000)
    config = _service(be, batch=BatchPolicy(max_batch=8,
                                            max_wait_ps=300_000))
    report = simulate_service(be, traffic, config, seed=0)
    # The source closes after its last arrival, which flushes the
    # pending partial batch immediately: a lone request pays exactly
    # one batch-of-1 service time, not the batching window.
    assert report.p50_us == pytest.approx(be.batch_service_ps(1) / 1e6)
    assert report.mean_batch == 1.0
    assert report.in_slo == 1


def test_metrics_registry_wiring():
    be = SyntheticBackend()
    registry = MetricsRegistry()
    simulate_service(be, _traffic(be, 1.4), _service(be), seed=9,
                     registry=registry)
    snap = registry.snapshot()
    by_suffix = {
        key.split("{")[0]: value for key, value in snap.items()
        if key.startswith("serve.")
    }
    assert by_suffix["serve.admitted"] + by_suffix["serve.shed"] == 2_000
    assert by_suffix["serve.completed"] == by_suffix["serve.admitted"]
    assert by_suffix["serve.batches"] > 0
    assert by_suffix["serve.replicas"] == 2
    hist_keys = [k for k in snap if k.startswith("serve.latency_ps")]
    assert hist_keys, "latency histogram must be registered"


def test_service_config_validation():
    be = SyntheticBackend()
    with pytest.raises(ValueError):
        ServiceConfig(batch=BatchPolicy(4, 10),
                      admission=AdmissionPolicy(max_queue=4), replicas=0)
    with pytest.raises(ValueError):
        ServiceConfig(batch=BatchPolicy(4, 10),
                      admission=AdmissionPolicy(max_queue=4),
                      dispatch_depth=0)
