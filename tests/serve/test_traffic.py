"""Load generators: determinism, shape, and validation."""

import numpy as np
import pytest

from repro.serve import ClosedLoopConfig, OpenLoopConfig, generate_requests

_PS_PER_S = 1_000_000_000_000


def _cfg(**kw):
    base = dict(offered_qps=1e6, n_requests=500, slo_ps=10_000_000)
    base.update(kw)
    return OpenLoopConfig(**base)


def test_schedule_is_deterministic_per_seed():
    a = generate_requests(_cfg(), seed=7)
    b = generate_requests(_cfg(), seed=7)
    assert a == b
    c = generate_requests(_cfg(), seed=8)
    assert a != c


def test_arrivals_monotonic_and_ids_sequential():
    reqs = generate_requests(_cfg(), seed=3)
    assert [r.rid for r in reqs] == list(range(len(reqs)))
    arrivals = [r.arrival_ps for r in reqs]
    assert arrivals == sorted(arrivals)
    assert all(r.deadline_ps == r.arrival_ps + 10_000_000 for r in reqs)


def test_mean_rate_matches_offered_qps():
    cfg = _cfg(n_requests=20_000)
    reqs = generate_requests(cfg, seed=1)
    mean_gap = reqs[-1].arrival_ps / len(reqs)
    expected = _PS_PER_S / cfg.offered_qps
    assert mean_gap == pytest.approx(expected, rel=0.05)


def test_burst_preserves_mean_but_adds_variance():
    smooth = generate_requests(_cfg(n_requests=20_000), seed=5)
    bursty = generate_requests(
        _cfg(n_requests=20_000, burst_factor=4.0), seed=5
    )
    t_smooth = smooth[-1].arrival_ps
    t_bursty = bursty[-1].arrival_ps
    assert t_bursty == pytest.approx(t_smooth, rel=0.1)
    gaps = lambda reqs: np.diff([r.arrival_ps for r in reqs])
    assert gaps(bursty).std() > 1.3 * gaps(smooth).std()


def test_tenants_are_zipf_skewed_and_priority_flagged():
    cfg = _cfg(n_requests=5_000, n_tenants=8, tenant_skew=1.2,
               priority_tenants=(0, 3))
    reqs = generate_requests(cfg, seed=11)
    counts = np.bincount([r.tenant for r in reqs], minlength=8)
    assert counts[0] > 2 * counts[7] > 0
    for r in reqs:
        assert r.priority == (r.tenant in (0, 3))


@pytest.mark.parametrize("bad", [
    dict(offered_qps=0.0),
    dict(n_requests=0),
    dict(slo_ps=0),
    dict(n_tenants=0),
    dict(burst_factor=0.5),
    dict(burst_len=0),
])
def test_open_loop_validation(bad):
    with pytest.raises(ValueError):
        _cfg(**bad)


def test_closed_loop_totals_and_validation():
    cfg = ClosedLoopConfig(n_clients=4, requests_per_client=25,
                           think_ps=1_000, slo_ps=1_000_000)
    assert cfg.n_requests == 100
    with pytest.raises(ValueError):
        ClosedLoopConfig(n_clients=0, requests_per_client=1,
                         think_ps=0, slo_ps=1)
    with pytest.raises(ValueError):
        ClosedLoopConfig(n_clients=1, requests_per_client=1,
                         think_ps=-1, slo_ps=1)
