"""Admission control and the replica autoscaler."""

import pytest

from repro.core.sim import Simulator
from repro.core.stream import Stream
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalerPolicy,
    BatchPolicy,
    DynamicBatcher,
    OpenLoopConfig,
    Request,
    ServiceConfig,
    SyntheticBackend,
    capacity_qps,
    simulate_service,
)


def _controller(policy, max_batch=4, queue_depth=0):
    sim = Simulator()
    backend = SyntheticBackend(service_ps=1_000, per_item_ps=100,
                               max_batch=max_batch)
    batcher = DynamicBatcher(
        sim, BatchPolicy(max_batch=max_batch, max_wait_ps=1_000),
        Stream(sim, depth=1_000),
    )
    for rid in range(queue_depth):
        batcher.submit(rid)
    return AdmissionController(policy, backend, batcher)


def _req(rid=0, deadline_ps=10**12, priority=False):
    return Request(rid=rid, tenant=0, arrival_ps=0,
                   deadline_ps=deadline_ps, priority=priority)


def test_queue_cap_sheds_normal_requests():
    ctl = _controller(AdmissionPolicy(max_queue=8), queue_depth=8)
    admitted, reason = ctl.admit(_req(), replicas=1)
    assert not admitted and reason == "queue"
    assert ctl.shed == {"queue": 1} and ctl.shed_total == 1
    assert ctl.admitted == 0


def test_priority_gets_headroom_then_sheds_too():
    policy = AdmissionPolicy(max_queue=8, priority_headroom=2.0)
    ctl = _controller(policy, queue_depth=8)
    admitted, _ = ctl.admit(_req(priority=True), replicas=1)
    assert admitted, "priority rides the headroom band"
    ctl = _controller(policy, queue_depth=16)
    admitted, reason = ctl.admit(_req(priority=True), replicas=1)
    assert not admitted and reason == "queue"


def test_deadline_infeasible_request_is_shed():
    # 8 batches of 4 ahead at ~1.4us each on one replica: an arrival
    # whose deadline is tighter than the backlog estimate is pointless.
    ctl = _controller(AdmissionPolicy(max_queue=100), queue_depth=32)
    admitted, reason = ctl.admit(_req(deadline_ps=2_000), replicas=1)
    assert not admitted and reason == "deadline"
    # The same request with a generous deadline is admitted...
    admitted, _ = ctl.admit(_req(deadline_ps=10**9), replicas=1)
    assert admitted
    # ...and more replicas shrink the estimate enough to admit.
    ctl2 = _controller(AdmissionPolicy(max_queue=100), queue_depth=32)
    admitted, _ = ctl2.admit(_req(deadline_ps=16_000), replicas=16)
    assert admitted


def test_deadline_check_can_be_disabled():
    ctl = _controller(
        AdmissionPolicy(max_queue=100, deadline_aware=False),
        queue_depth=32,
    )
    admitted, _ = ctl.admit(_req(deadline_ps=1), replicas=1)
    assert admitted


def test_priority_skips_the_deadline_check():
    ctl = _controller(AdmissionPolicy(max_queue=100), queue_depth=32)
    admitted, _ = ctl.admit(_req(deadline_ps=1, priority=True), replicas=1)
    assert admitted


@pytest.mark.parametrize("bad", [
    dict(max_queue=0),
    dict(max_queue=1, priority_headroom=0.5),
])
def test_admission_policy_validation(bad):
    with pytest.raises(ValueError):
        AdmissionPolicy(**bad)


@pytest.mark.parametrize("bad", [
    dict(min_replicas=0, max_replicas=2, interval_ps=10),
    dict(min_replicas=2, max_replicas=1, interval_ps=10),
    dict(min_replicas=1, max_replicas=2, interval_ps=0),
    dict(min_replicas=1, max_replicas=2, interval_ps=10,
         scale_up_depth=1.0, scale_down_depth=2.0),
])
def test_autoscaler_policy_validation(bad):
    with pytest.raises(ValueError):
        AutoscalerPolicy(**bad)


def test_autoscaler_scales_up_under_overload_and_back_down():
    backend = SyntheticBackend(service_ps=4_000_000, per_item_ps=200_000,
                               max_batch=8, name="slow")
    config = ServiceConfig(
        batch=BatchPolicy(max_batch=8, max_wait_ps=2_000_000),
        admission=AdmissionPolicy(max_queue=512, deadline_aware=False),
        replicas=1,
        autoscaler=AutoscalerPolicy(min_replicas=1, max_replicas=4,
                                    interval_ps=5_000_000,
                                    scale_up_depth=4.0),
    )
    traffic = OpenLoopConfig(
        offered_qps=capacity_qps(backend) * 2.5,
        n_requests=1_500, slo_ps=200_000_000,
    )
    report = simulate_service(backend, traffic, config, seed=7)
    replicas_seen = [r for _, _, r in report.autoscale_decisions]
    assert max(replicas_seen) > 1, "overload must trigger scale-up"
    assert max(replicas_seen) <= 4, "never exceeds max_replicas"
    assert report.replicas_final < max(replicas_seen), \
        "drained queue must scale back down"
    assert report.completed + report.shed + report.failed == report.offered
