"""Property-based tests for the dynamic batcher (repro.serve.batcher).

Random submission schedules (gaps, run lengths) against random
(max_batch, max_wait) policies and a randomly slow consumer must
uphold the batcher's contract:

* conservation — every submitted item appears in exactly one
  dispatched batch, no loss, no duplication;
* FIFO — items leave in submit order (hence per-tenant FIFO);
* bounded batches — no batch is empty or larger than ``max_batch``;
* bounded wait — with a consumer that never backpressures, no item
  sits in the batcher longer than ``max_wait_ps``.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.sim import Simulator
from repro.core.stream import Stream
from repro.serve import BatchPolicy, DynamicBatcher

# A schedule is [(gap_ps, items_in_run), ...]: wait gap, then submit a
# run of items back-to-back at the same timestamp.
_SCHEDULE = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1,
    max_size=12,
)
_POLICY = st.tuples(
    st.integers(min_value=1, max_value=7),    # max_batch
    st.integers(min_value=0, max_value=40),   # max_wait_ps
)


def _drive(schedule, max_batch, max_wait_ps, consumer_delay_ps):
    """Run a schedule through a batcher; return (submitted, batches)."""
    sim = Simulator()
    # Unbounded-enough stream: the consumer can lag without ever
    # blocking the batcher when consumer_delay_ps is 0.
    out = Stream(sim, depth=10_000)
    batcher = DynamicBatcher(
        sim, BatchPolicy(max_batch=max_batch, max_wait_ps=max_wait_ps), out
    )
    submitted = []
    batches = []

    def producer():
        rid = 0
        for gap, run in schedule:
            if gap:
                yield sim.timeout(gap)
            for _ in range(run):
                batcher.submit(rid)
                submitted.append((rid, sim.now))
                rid += 1
        batcher.close()

    def consumer():
        while True:
            ok, batch = out.try_get()
            if not ok:
                if batcher.drained and out.empty:
                    return
                yield sim.timeout(1)
                continue
            batches.append(batch)
            if consumer_delay_ps:
                yield sim.timeout(consumer_delay_ps)

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    return submitted, batches


@given(schedule=_SCHEDULE, policy=_POLICY,
       consumer_delay=st.integers(min_value=0, max_value=60))
@settings(max_examples=120, deadline=None)
def test_no_item_lost_duplicated_and_fifo(schedule, policy, consumer_delay):
    max_batch, max_wait = policy
    submitted, batches = _drive(schedule, max_batch, max_wait,
                                consumer_delay)
    dispatched = [item for b in batches for item in b.items]
    assert dispatched == [rid for rid, _ in submitted]
    for batch in batches:
        assert 1 <= len(batch) <= max_batch
        assert len(batch.items) == len(batch.submit_ps)


@given(schedule=_SCHEDULE, policy=_POLICY)
@settings(max_examples=120, deadline=None)
def test_wait_bound_without_backpressure(schedule, policy):
    max_batch, max_wait = policy
    submitted, batches = _drive(schedule, max_batch, max_wait,
                                consumer_delay_ps=0)
    submit_at = dict(submitted)
    for batch in batches:
        for item, t_submit in zip(batch.items, batch.submit_ps):
            assert t_submit == submit_at[item]
            assert batch.formed_ps - t_submit <= max_wait


@given(schedule=_SCHEDULE, policy=_POLICY,
       consumer_delay=st.integers(min_value=0, max_value=60))
@settings(max_examples=60, deadline=None)
def test_per_tenant_fifo_under_interleaving(schedule, policy,
                                            consumer_delay):
    # Tag items round-robin across 3 tenants; global FIFO must imply
    # per-tenant FIFO in the dispatched order.
    max_batch, max_wait = policy
    submitted, batches = _drive(schedule, max_batch, max_wait,
                                consumer_delay)
    order = [item for b in batches for item in b.items]
    for tenant in range(3):
        lane = [rid for rid in order if rid % 3 == tenant]
        assert lane == sorted(lane)


def test_full_batch_dispatches_without_waiting():
    sim = Simulator()
    out = Stream(sim, depth=100)
    batcher = DynamicBatcher(
        sim, BatchPolicy(max_batch=4, max_wait_ps=1_000_000), out
    )
    got = []

    def producer():
        for rid in range(4):
            batcher.submit(rid)
        yield sim.timeout(0)
        batcher.close()

    def consumer():
        batch = yield out.get()
        got.append((sim.now, batch))

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="c")
    sim.run()
    (t, batch), = got
    assert t == 0 and batch.items == (0, 1, 2, 3)


def test_submit_after_close_is_rejected():
    sim = Simulator()
    batcher = DynamicBatcher(
        sim, BatchPolicy(max_batch=2, max_wait_ps=10), Stream(sim, depth=4)
    )
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit(0)
    sim.run()
    assert batcher.drained


@pytest.mark.parametrize("bad", [
    dict(max_batch=0, max_wait_ps=1),
    dict(max_batch=1, max_wait_ps=-1),
])
def test_policy_validation(bad):
    with pytest.raises(ValueError):
        BatchPolicy(**bad)
