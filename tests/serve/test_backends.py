"""Backend batch-cost surfaces: protocol, bounds, amortisation shapes."""

import pytest

from repro.serve import (
    Backend,
    FannsBackend,
    MicroRecBackend,
    SyntheticBackend,
    capacity_qps,
)

_PS_PER_S = 1_000_000_000_000


def test_synthetic_cost_arithmetic_and_protocol():
    be = SyntheticBackend(service_ps=1_000, per_item_ps=10, max_batch=4)
    assert isinstance(be, Backend)
    assert be.batch_service_ps(1) == 1_010
    assert be.batch_service_ps(4) == 1_040
    with pytest.raises(ValueError):
        be.batch_service_ps(0)
    with pytest.raises(ValueError):
        be.batch_service_ps(5)


def test_capacity_qps_definition():
    be = SyntheticBackend(service_ps=0, per_item_ps=1_000_000, max_batch=8)
    # 1 us per item at full batches -> 1M items/s per replica.
    assert capacity_qps(be) == pytest.approx(1e6)
    assert capacity_qps(be, replicas=3) == pytest.approx(3e6)
    with pytest.raises(ValueError):
        capacity_qps(be, replicas=0)


def test_batching_amortises_per_request_cost():
    be = SyntheticBackend(service_ps=1_000_000, per_item_ps=1_000,
                          max_batch=16)
    solo = be.batch_service_ps(1)
    full = be.batch_service_ps(be.max_batch) / be.max_batch
    assert full < solo / 10


@pytest.fixture(scope="module")
def fanns_backend():
    from repro.fanns import build_ivfpq
    from repro.workloads import clustered_dataset

    data = clustered_dataset(n=2_000, dim=16, n_queries=4, gt_k=4,
                             n_clusters=16, cluster_std=0.3, seed=5)
    index = build_ivfpq(data.base, nlist=16, m=16, ksub=16, seed=5)
    return FannsBackend(index, nprobe=4, max_batch=8, list_scale=100)


def test_fanns_batch_cost_is_latency_plus_initiation(fanns_backend):
    be = fanns_backend
    one = be.batch_service_ps(1)
    two = be.batch_service_ps(2)
    ii = two - one
    assert ii > 0
    # Pipeline model: every extra query adds exactly one initiation
    # interval (the bottleneck stage), which is below the end-to-end
    # pipeline latency (the sum of all stages).
    assert be.batch_service_ps(8) == one + 7 * ii
    assert ii < one


def test_microrec_batch_cost_is_monotonic_and_sublinear():
    from repro.microrec import EmbeddingTables
    from repro.workloads import production_like_model

    model = production_like_model(n_tables=8, max_rows=10_000, seed=2)
    be = MicroRecBackend(EmbeddingTables(model, seed=2), max_batch=16)
    costs = [be.batch_service_ps(b) for b in (1, 2, 4, 8, 16)]
    assert costs == sorted(costs)
    assert costs[-1] < 16 * costs[0], "batching must amortise"


def test_farview_batch_cost_is_near_linear():
    from repro.farview import FarviewServer
    from repro.relational import (
        AggFunc, AggSpec, Aggregate, Filter, QueryPlan, Table, col,
    )
    from repro.serve import FarviewBackend
    from repro.workloads import uniform_table

    server = FarviewServer()
    server.store("t", Table(uniform_table(10_000, n_payload_cols=1)))
    plan = QueryPlan((
        Filter(col("key") < 100),
        Aggregate((AggSpec(AggFunc.SUM, "val0"),)),
    ))
    be = FarviewBackend(server, plan, "t", max_batch=8)
    one = be.batch_service_ps(1)
    eight = be.batch_service_ps(8)
    # The scan re-runs per request: near-linear scaling, bounded above
    # by 8x one request (the protocol overhead is what amortises).
    assert 6 * one < eight < 8 * one
